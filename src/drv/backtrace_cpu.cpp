#include "drv/backtrace_cpu.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <span>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "core/wfa_kernel.hpp"
#include "hw/bitpack.hpp"
#include "hw/result_format.hpp"
#include "hw/wavefront_geometry.hpp"

namespace wfasic::drv {
namespace {

/// Transactions per backtrace block for P parallel sections (4 for P=64).
std::size_t txns_per_block(unsigned parallel_sections) {
  return (hw::packed_5bit_bytes(parallel_sections) + hw::kBtPayloadBytes - 1) /
         hw::kBtPayloadBytes;
}

/// Consistency check of the non-aborting reconstruction: on failure,
/// records the message and bails out with nullopt instead of aborting.
#define WFASIC_BT_CHECK(cond, msg)            \
  do {                                        \
    if (!(cond)) {                            \
      if (why != nullptr) *why = (msg);       \
      return std::nullopt;                    \
    }                                         \
  } while (0)

}  // namespace

std::vector<BtAlignment> parse_bt_stream(const mem::MainMemory& memory,
                                         std::uint64_t out_addr,
                                         std::size_t num_pairs,
                                         bool separate_data,
                                         cpu::BtCpuCounters* counters,
                                         bool crc, std::uint32_t crc_salt) {
  std::vector<BtAlignment> done;
  std::map<std::uint32_t, BtAlignment> open;  // id -> in-flight alignment
  std::map<std::uint32_t, Crc32> crcs;        // id -> running stream CRC
  std::size_t last_seen = 0;
  std::uint64_t addr = out_addr;
  std::uint32_t current_id = 0;
  bool have_current = false;

  const auto read_txn = [&](mem::Beat& beat) {
    memory.read(addr, std::span<std::uint8_t>(beat.data.data(),
                                              mem::kBeatBytes));
    addr += mem::kBeatBytes;
    return hw::unpack_bt_transaction(beat);
  };

  while (last_seen < num_pairs) {
    mem::Beat beat;
    const hw::BtTransaction txn = read_txn(beat);
    if (counters != nullptr && separate_data) {
      // Multi-Aligner method: the CPU touches and copies every
      // transaction while separating the interleaved stream by id (§4.5).
      ++counters->blocks_scanned;
      ++counters->blocks_copied;
    }
    if (crc) {
      if (hw::is_bt_crc_footer(txn)) {
        const auto it = crcs.find(txn.id);
        WFASIC_REQUIRE(it != crcs.end() &&
                           hw::bt_crc_footer_value(txn) == it->second.value(),
                       "parse_bt_stream: alignment failed its stream CRC");
        crcs.erase(it);
        continue;  // footers carry no payload
      }
      // Mirrors the Collector: every packed beat of the alignment,
      // including the Last one, folds into the per-alignment accumulator.
      crcs.try_emplace(txn.id, Crc32(crc_salt))
          .first->second.update(beat.data.data(), mem::kBeatBytes);
    }

    if (!separate_data) {
      // Single-Aligner method: the stream must be consecutive per
      // alignment — an interleaved transaction means the driver was used
      // with a multi-Aligner accelerator by mistake.
      if (have_current) {
        WFASIC_REQUIRE(txn.id == current_id,
                       "parse_bt_stream: interleaved stream requires the "
                       "data-separation method");
      } else {
        current_id = txn.id;
        have_current = true;
      }
    }

    BtAlignment& alignment = open[txn.id];
    alignment.id = txn.id;
    if (txn.last) {
      const hw::BtScoreRecord record = hw::unpack_bt_score_record(txn.data);
      alignment.success = record.success;
      alignment.score = record.score;
      alignment.k_reached = record.k_reached;
      // Transaction counters must be gapless: payload txns then the record.
      const std::size_t expected_payload_txns =
          alignment.payload.size() / hw::kBtPayloadBytes;
      WFASIC_REQUIRE(txn.counter == expected_payload_txns,
                     "parse_bt_stream: transaction counter gap");
      if (counters != nullptr && !separate_data) {
        // Single-Aligner method: transactions are consecutive per
        // alignment and carry their in-alignment counter, so the CPU finds
        // each boundary with a binary search over the counter
        // discontinuity — O(log n) probes instead of a full scan. This is
        // the §4.5 "method that identifies these boundaries" and the
        // reason the No-Sep configuration wins Figure 11.
        std::size_t probes = 2;
        for (std::size_t span = expected_payload_txns + 1; span > 1;
             span /= 2) {
          ++probes;
        }
        counters->blocks_scanned += probes;
      }
      done.push_back(std::move(alignment));
      open.erase(txn.id);
      ++last_seen;
      have_current = false;
    } else {
      WFASIC_REQUIRE(
          txn.counter ==
              alignment.payload.size() / hw::kBtPayloadBytes,
          "parse_bt_stream: out-of-order transaction counter");
      alignment.payload.insert(alignment.payload.end(), txn.data.begin(),
                               txn.data.end());
    }
  }
  WFASIC_REQUIRE(open.empty(),
                 "parse_bt_stream: stream ended with incomplete alignments");
  // The final alignments' CRC footers trail their Last beats; drain and
  // verify them before declaring the stream good.
  while (crc && !crcs.empty()) {
    mem::Beat beat;
    const hw::BtTransaction txn = read_txn(beat);
    if (counters != nullptr && separate_data) {
      ++counters->blocks_scanned;
      ++counters->blocks_copied;
    }
    WFASIC_REQUIRE(hw::is_bt_crc_footer(txn),
                   "parse_bt_stream: expected a trailing CRC footer");
    const auto it = crcs.find(txn.id);
    WFASIC_REQUIRE(it != crcs.end() &&
                       hw::bt_crc_footer_value(txn) == it->second.value(),
                   "parse_bt_stream: alignment failed its stream CRC");
    crcs.erase(it);
  }
  if (counters != nullptr) counters->alignments += done.size();
  return done;
}

std::optional<core::AlignResult> try_reconstruct_alignment(
    const BtAlignment& bt, std::string_view a, std::string_view b,
    const hw::AcceleratorConfig& cfg, const char** why,
    cpu::BtCpuCounters* counters) {
  core::AlignResult result;
  if (!bt.success) return result;  // ok = false

  const auto n = static_cast<offset_t>(a.size());
  const auto m_len = static_cast<offset_t>(b.size());
  const diag_t k_align = m_len - n;
  const unsigned P = cfg.parallel_sections;
  const std::size_t tpb = txns_per_block(P);
  const score_t score = bt.score;

  WFASIC_BT_CHECK(bt.k_reached == k_align,
                  "reconstruct_alignment: score record k does not match the "
                  "sequence lengths");

  // Block index base per present score, replaying the geometry (§4.5).
  hw::WavefrontGeometry geom(n, m_len, cfg.pen, cfg.k_max);
  std::vector<std::size_t> block_base(static_cast<std::size_t>(score) + 1, 0);
  std::size_t total_blocks = 0;
  for (score_t s = 1; s <= score; ++s) {
    block_base[static_cast<std::size_t>(s)] = total_blocks;
    const hw::WfBounds& bounds = geom.bounds(s);
    if (bounds.present()) total_blocks += (bounds.width() + P - 1) / P;
  }
  WFASIC_BT_CHECK(bt.payload.size() ==
                      total_blocks * tpb * hw::kBtPayloadBytes,
                  "reconstruct_alignment: payload size does not match the "
                  "wavefront geometry");

  const auto origin_at =
      [&](score_t s, diag_t k) -> std::optional<core::OriginBits> {
    const hw::WfBounds& bounds = geom.bounds(s);
    if (!bounds.present() || k < bounds.lo || k > bounds.hi) {
      return std::nullopt;
    }
    const auto cell_idx = static_cast<std::size_t>(k - bounds.lo);
    const std::size_t block =
        block_base[static_cast<std::size_t>(s)] + cell_idx / P;
    const std::size_t within = cell_idx % P;
    const std::span<const std::uint8_t> slice(
        bt.payload.data() + block * tpb * hw::kBtPayloadBytes,
        tpb * hw::kBtPayloadBytes);
    return core::unpack_origin_bits(hw::extract_5bit(slice, within));
  };

  // Origin walk: collect the difference operations end-to-start. Every
  // visit to the M matrix marks a spot where the hardware ran extend(), so
  // a (possibly empty) run of matches belongs right after that op in
  // forward order — and *only* there. A coincidental base match between
  // two gap-extension steps must NOT become an 'M', or the rebuilt CIGAR
  // would diverge from the alignment the accelerator actually scored.
  enum class Mat { kM, kI, kD };
  struct Item {
    CigarOp op;
    bool match_run_follows;  // forward order: op, then a maximal M-run
  };
  std::vector<Item> items;
  Mat mat = Mat::kM;
  score_t s = score;
  diag_t k = k_align;
  const Penalties& pen = cfg.pen;
  bool leading_run = false;  // match run at the very start of the alignment
  while (true) {
    if (mat == Mat::kM && s == 0) {
      leading_run = true;  // the initial extend of M_{0,0}
      break;
    }
    if (counters != nullptr) ++counters->path_steps;
    const std::optional<core::OriginBits> cell = origin_at(s, k);
    WFASIC_BT_CHECK(cell.has_value(),
                    "reconstruct_alignment: path cell outside wavefront");
    const core::OriginBits origin = *cell;
    // Only codes 0..4 are legal M origins (§4.3.3); 5..7 can only appear
    // in a corrupted stream and must not be walked.
    WFASIC_BT_CHECK(static_cast<std::uint8_t>(origin.m_origin) <=
                        static_cast<std::uint8_t>(core::MOrigin::kDelExt),
                    "reconstruct_alignment: invalid origin code in stream");
    switch (mat) {
      case Mat::kM:
        switch (origin.m_origin) {
          case core::MOrigin::kSub:
            items.push_back({CigarOp::kMismatch, true});
            s -= pen.mismatch;
            break;
          case core::MOrigin::kInsOpen:
            items.push_back({CigarOp::kInsertion, true});
            s -= pen.open_total();
            k -= 1;
            break;
          case core::MOrigin::kInsExt:
            items.push_back({CigarOp::kInsertion, true});
            s -= pen.gap_extend;
            k -= 1;
            mat = Mat::kI;
            break;
          case core::MOrigin::kDelOpen:
            items.push_back({CigarOp::kDeletion, true});
            s -= pen.open_total();
            k += 1;
            break;
          case core::MOrigin::kDelExt:
            items.push_back({CigarOp::kDeletion, true});
            s -= pen.gap_extend;
            k += 1;
            mat = Mat::kD;
            break;
        }
        break;
      case Mat::kI:
        items.push_back({CigarOp::kInsertion, false});
        k -= 1;
        if (origin.i_from_ext) {
          s -= pen.gap_extend;
        } else {
          s -= pen.open_total();
          mat = Mat::kM;
        }
        break;
      case Mat::kD:
        items.push_back({CigarOp::kDeletion, false});
        k += 1;
        if (origin.d_from_ext) {
          s -= pen.gap_extend;
        } else {
          s -= pen.open_total();
          mat = Mat::kM;
        }
        break;
    }
    WFASIC_BT_CHECK(s >= 0, "reconstruct_alignment: walked past score 0");
  }
  WFASIC_BT_CHECK(k == 0, "reconstruct_alignment: walk did not reach k = 0");
  std::reverse(items.begin(), items.end());

  // Match insertion: "the CPU traverses the two sequences and inserts all
  // the necessary matches between the differences" (§4.5). Runs are
  // maximal because the hardware extend is greedy, but they are inserted
  // only where the walk crossed an M-state (extend points) — never inside
  // a gap run.
  Cigar& cig = result.cigar;
  std::size_t i = 0;
  std::size_t j = 0;
  const auto take_matches = [&] {
    while (i < a.size() && j < b.size() && a[i] == b[j]) {
      cig.push(CigarOp::kMatch);
      ++i;
      ++j;
      if (counters != nullptr) ++counters->match_chars;
    }
  };
  if (leading_run) take_matches();
  for (const Item& item : items) {
    switch (item.op) {
      case CigarOp::kMismatch:
        WFASIC_BT_CHECK(i < a.size() && j < b.size() && a[i] != b[j],
                        "reconstruct_alignment: mismatch op on equal bases");
        ++i;
        ++j;
        break;
      case CigarOp::kInsertion:
        WFASIC_BT_CHECK(j < b.size(),
                        "reconstruct_alignment: insertion past text end");
        ++j;
        break;
      case CigarOp::kDeletion:
        WFASIC_BT_CHECK(i < a.size(),
                        "reconstruct_alignment: deletion past pattern end");
        ++i;
        break;
      case CigarOp::kMatch:
        WFASIC_UNREACHABLE("walk ops never contain matches");
    }
    cig.push(item.op);
    if (item.match_run_follows) take_matches();
  }
  WFASIC_BT_CHECK(i == a.size() && j == b.size(),
                  "reconstruct_alignment: sequences not fully consumed");

  result.ok = true;
  result.score = score;
  return result;
}

core::AlignResult reconstruct_alignment(const BtAlignment& bt,
                                        std::string_view a,
                                        std::string_view b,
                                        const hw::AcceleratorConfig& cfg,
                                        cpu::BtCpuCounters* counters) {
  const char* why = nullptr;
  const std::optional<core::AlignResult> result =
      try_reconstruct_alignment(bt, a, b, cfg, &why, counters);
  WFASIC_REQUIRE(result.has_value(), why);
  return *result;
}

BtStreamScan try_parse_bt_stream(const mem::MainMemory& memory,
                                 std::uint64_t out_addr,
                                 std::uint64_t max_bytes,
                                 std::size_t num_pairs, bool crc,
                                 std::uint32_t crc_salt) {
  BtStreamScan scan;
  std::map<std::uint32_t, BtAlignment> open;  // id -> in-flight alignment
  std::set<std::uint32_t> poisoned;           // ids with counter anomalies
  std::map<std::uint32_t, Crc32> crcs;        // id -> running stream CRC
  std::map<std::uint32_t, BtAlignment> awaiting;  // Last seen, need footer
  std::uint64_t addr = out_addr;
  const std::uint64_t end =
      out_addr + (max_bytes / mem::kBeatBytes) * mem::kBeatBytes;
  std::size_t complete = 0;

  while ((complete < num_pairs || (crc && !awaiting.empty())) &&
         addr + mem::kBeatBytes <= end) {
    mem::Beat beat;
    memory.read(addr,
                std::span<std::uint8_t>(beat.data.data(), mem::kBeatBytes));
    addr += mem::kBeatBytes;
    const hw::BtTransaction txn = hw::unpack_bt_transaction(beat);

    if (crc) {
      if (hw::is_bt_crc_footer(txn)) {
        // An alignment is only accepted once its footer CRC matches the
        // accumulator over every beat that reached memory — corrupted,
        // dropped, and stale-from-an-earlier-launch beats all diverge.
        const auto acc = crcs.find(txn.id);
        const auto wait = awaiting.find(txn.id);
        if (acc != crcs.end() && wait != awaiting.end() &&
            hw::bt_crc_footer_value(txn) == acc->second.value()) {
          scan.alignments.push_back(std::move(wait->second));
        } else {
          scan.clean = false;  // drop the damaged alignment
        }
        if (acc != crcs.end()) crcs.erase(acc);
        if (wait != awaiting.end()) awaiting.erase(wait);
        continue;
      }
      crcs.try_emplace(txn.id, Crc32(crc_salt))
          .first->second.update(beat.data.data(), mem::kBeatBytes);
    }

    BtAlignment& alignment = open[txn.id];
    alignment.id = txn.id;
    const std::size_t expected_counter =
        alignment.payload.size() / hw::kBtPayloadBytes;
    if (txn.last) {
      if (!poisoned.contains(txn.id) && txn.counter == expected_counter) {
        const hw::BtScoreRecord record =
            hw::unpack_bt_score_record(txn.data);
        alignment.success = record.success;
        alignment.score = record.score;
        alignment.k_reached = record.k_reached;
        if (crc) {
          // Hold the alignment until its footer confirms the stream; a
          // second Last for the same id (corruption) drops the first.
          if (awaiting.contains(txn.id)) scan.clean = false;
          awaiting.insert_or_assign(txn.id, std::move(alignment));
        } else {
          scan.alignments.push_back(std::move(alignment));
        }
      } else {
        scan.clean = false;  // drop the damaged alignment
      }
      open.erase(txn.id);
      poisoned.erase(txn.id);
      ++complete;
    } else if (txn.counter != expected_counter) {
      // Counter gap: a beat of this alignment was lost, duplicated, or
      // corrupted. Poison the id so its eventual score record is dropped.
      scan.clean = false;
      poisoned.insert(txn.id);
    } else if (!poisoned.contains(txn.id)) {
      alignment.payload.insert(alignment.payload.end(), txn.data.begin(),
                               txn.data.end());
    }
  }
  if (!open.empty() || complete < num_pairs) scan.clean = false;
  if (crc && !awaiting.empty()) scan.clean = false;  // footer never arrived
  return scan;
}

}  // namespace wfasic::drv
