// Linux-driver-style host API for the WFAsic accelerator (§3, §5.3: "We
// use a standard Linux driver and API to configure the WFAsic
// accelerator").
//
// The driver runs on the (modelled) CPU: it encodes input sets into main
// memory in the §4.2 layout, programs the AXI-Lite registers, starts the
// accelerator, waits for Idle, and decodes the result stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gen/seqgen.hpp"
#include "hw/accelerator.hpp"
#include "hw/input_format.hpp"
#include "hw/result_format.hpp"
#include "mem/main_memory.hpp"

namespace wfasic::drv {

/// Where one encoded batch lives in main memory.
struct BatchLayout {
  std::uint64_t in_addr = 0;
  std::uint64_t in_bytes = 0;
  std::uint64_t out_addr = 0;
  std::uint32_t max_read_len = 0;
  std::size_t num_pairs = 0;
};

/// Encodes `pairs` at `in_addr` in the accelerator input layout.
///
/// MAX_READ_LEN is the longest sequence of the set rounded up to 16
/// (§4.2) unless `force_max_read_len` is non-zero — forcing a smaller
/// value stores truncated bases but the true length, which the Extractor
/// must flag as unsupported (used by the robustness tests). Sequences are
/// stored verbatim, so 'N' bases reach the Extractor and trip its
/// unsupported-read detection.
[[nodiscard]] BatchLayout encode_input_set(
    mem::MainMemory& memory, std::span<const gen::SequencePair> pairs,
    std::uint64_t in_addr, std::uint64_t out_addr,
    std::uint32_t force_max_read_len = 0);

class Driver {
 public:
  explicit Driver(hw::Accelerator& accelerator)
      : accelerator_(accelerator) {}

  /// Programs the registers and pulses Start.
  void start(const BatchLayout& batch, bool backtrace,
             bool enable_interrupt = false);

  /// Polls the Idle register until the run completes, stepping the
  /// simulated accelerator. Returns cycles elapsed.
  std::uint64_t wait_idle(std::uint64_t max_cycles = 4'000'000'000ULL);

  /// Interrupt-driven completion: runs until the completion interrupt is
  /// pending (requires start(..., enable_interrupt=true)), acknowledges
  /// it, and returns cycles elapsed.
  std::uint64_t wait_interrupt(std::uint64_t max_cycles = 4'000'000'000ULL);

  /// Convenience: start + wait_idle.
  std::uint64_t run(const BatchLayout& batch, bool backtrace) {
    start(batch, backtrace);
    return wait_idle();
  }

 private:
  hw::Accelerator& accelerator_;
};

/// Decodes the NBT result area: `num_pairs` packed 4-byte words, four per
/// 16-byte transaction, in Collector completion order. Entries are
/// returned in stream order (not sorted by id).
[[nodiscard]] std::vector<hw::NbtResult> decode_nbt_results(
    const mem::MainMemory& memory, const BatchLayout& batch);

}  // namespace wfasic::drv
