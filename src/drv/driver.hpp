// Linux-driver-style host API for the WFAsic accelerator (§3, §5.3: "We
// use a standard Linux driver and API to configure the WFAsic
// accelerator").
//
// The driver runs on the (modelled) CPU: it encodes input sets into main
// memory in the §4.2 layout, programs the AXI-Lite registers, starts the
// accelerator, waits for Idle, and decodes the result stream.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/align_result.hpp"
#include "gen/seqgen.hpp"
#include "hw/accelerator.hpp"
#include "hw/input_format.hpp"
#include "hw/result_format.hpp"
#include "mem/main_memory.hpp"

namespace wfasic::drv {

/// Where one encoded batch lives in main memory.
struct BatchLayout {
  std::uint64_t in_addr = 0;
  std::uint64_t in_bytes = 0;
  std::uint64_t out_addr = 0;
  std::uint32_t max_read_len = 0;
  std::size_t num_pairs = 0;
  /// CRC transport protection (must agree with AcceleratorConfig::crc):
  /// the input set carries per-pair footer sections, the result stream
  /// carries per-record/per-alignment CRCs, all salted with `crc_salt`.
  bool crc = false;
  std::uint32_t crc_salt = 0;
};

/// Encodes `pairs` at `in_addr` in the accelerator input layout.
///
/// MAX_READ_LEN is the longest sequence of the set rounded up to 16
/// (§4.2) unless `force_max_read_len` is non-zero — forcing a smaller
/// value stores truncated bases but the true length, which the Extractor
/// must flag as unsupported (used by the robustness tests). Sequences are
/// stored verbatim, so 'N' bases reach the Extractor and trip its
/// unsupported-read detection. With `crc` each pair gains a footer
/// section carrying the salted CRC-32 over the pair's preceding bytes;
/// the Extractor verifies it and fails mismatching pairs with kErrCrc.
[[nodiscard]] BatchLayout encode_input_set(
    mem::MainMemory& memory, std::span<const gen::SequencePair> pairs,
    std::uint64_t in_addr, std::uint64_t out_addr,
    std::uint32_t force_max_read_len = 0, bool crc = false,
    std::uint32_t crc_salt = 0);

/// Typed outcome of a driver wait. Replaces the old bare cycle count,
/// which made a hung accelerator indistinguishable from a long run.
enum class RunOutcome {
  kOk,         ///< completed cleanly
  kPartial,    ///< completed, but some pairs were flagged unsupported
  kDmaError,   ///< aborted on an AXI SLVERR/DECERR on the memory path
  kDataError,  ///< aborted on an uncorrectable ECC error (kErrEccUnc)
  kTimeout,    ///< watchdog abort, or the wait-loop cycle budget ran out
};

struct RunStatus {
  RunOutcome outcome = RunOutcome::kOk;
  std::uint64_t cycles = 0;      ///< cycles elapsed during the wait
  std::uint32_t err_status = 0;  ///< kRegErrStatus snapshot (hw::ErrBits)
  std::uint32_t err_count = 0;   ///< kRegErrCount snapshot (this run)
  /// Full PMU snapshot taken when the run was classified. Every return
  /// path — clean completion, watchdog, DMA abort, ECC-uncorrectable,
  /// CRC, wait-budget timeout — carries it, because classify() is the
  /// single producer (audited by tests/test_observability.cpp).
  hw::PerfSnapshot perf;
  /// Recovery-cost accounting (docs/RELIABILITY.md §7). Zero on plain
  /// waits; the checkpoint-aware paths (Driver::wait_idle_checkpointed /
  /// resume_checkpointed) and the engine's failover machinery fill them
  /// in, so every consumer sees what a run's resilience actually cost.
  std::uint64_t checkpoints = 0;        ///< snapshots captured during the wait
  std::uint64_t restores = 0;           ///< snapshot blobs applied
  std::uint64_t recomputed_cycles = 0;  ///< cycles re-simulated after restore

  [[nodiscard]] bool ok() const { return outcome == RunOutcome::kOk; }
  /// The accelerator reached Idle and produced results (possibly with
  /// unsupported pairs flagged) — the result area is safe to decode.
  [[nodiscard]] bool completed() const {
    return outcome == RunOutcome::kOk || outcome == RunOutcome::kPartial;
  }
};

class Driver {
 public:
  explicit Driver(hw::Accelerator& accelerator)
      : accelerator_(accelerator) {}

  /// Programs the registers, clears stale error status and pulses Start.
  void start(const BatchLayout& batch, bool backtrace,
             bool enable_interrupt = false);

  /// Polls the Idle register until the run completes or `max_cycles`
  /// elapse, stepping the simulated accelerator, then classifies the run
  /// from kRegErrStatus. A hung accelerator comes back kTimeout — loudly
  /// distinguishable from a long run — never a bare cycle count.
  RunStatus wait_idle(std::uint64_t max_cycles = 4'000'000'000ULL);

  /// Interrupt-driven completion: runs until the completion interrupt is
  /// pending (requires start(..., enable_interrupt=true)) or `max_cycles`
  /// elapse. Acknowledges the interrupt when it fired; classifies like
  /// wait_idle (an interrupt that never fires is kTimeout, not a hang).
  RunStatus wait_interrupt(std::uint64_t max_cycles = 4'000'000'000ULL);

  // --- Checkpoint-aware execution -------------------------------------------

  /// Outcome of a checkpoint-aware wait: the usual classified status plus
  /// the most recent device snapshot, ready to hand to a replacement
  /// device (hw::Accelerator::restore) if this one is lost later.
  struct CheckpointRun {
    RunStatus status;
    /// The last snapshot captured at an interval boundary; empty when the
    /// run finished before the first interval elapsed.
    std::vector<std::uint8_t> last_checkpoint;
    /// Device cycle at which last_checkpoint was taken (0 if none).
    std::uint64_t checkpoint_cycle = 0;
    /// Set when resume_checkpointed was handed a blob the device rejected
    /// (status.outcome is kDataError in that case; nothing was resumed).
    std::optional<sim::SnapshotError> restore_error;
  };

  /// wait_idle with periodic checkpointing: advances the device in
  /// `checkpoint_interval`-cycle slices and snapshots it at every slice
  /// boundary the run is still in flight. Every slice boundary is a safe
  /// point — the stepping entry points flush event bookkeeping on exit —
  /// so the capture never perturbs the simulation: the final state,
  /// classification and PMU numbers are bit-identical to a plain
  /// wait_idle under every stepping strategy. Loss after a failure is
  /// bounded by the interval, not the batch length.
  CheckpointRun wait_idle_checkpointed(
      std::uint64_t checkpoint_interval,
      std::uint64_t max_cycles = 4'000'000'000ULL);

  /// Applies `blob` to the device and finishes the run it captured, with
  /// checkpointing still armed. A rejected blob (corrupt, version skew,
  /// config mismatch) fails loudly: restore_error carries the typed cause,
  /// the status classifies as kDataError and nothing is resumed.
  CheckpointRun resume_checkpointed(
      std::span<const std::uint8_t> blob, std::uint64_t checkpoint_interval,
      std::uint64_t max_cycles = 4'000'000'000ULL);

  /// Classifies the accelerator's current error state into a RunStatus —
  /// the single source of truth wait_idle/wait_interrupt and the engine's
  /// non-blocking poll path share. `completed` is the caller's completion
  /// signal (Idle reached / interrupt fired); `cycles` the wait span.
  [[nodiscard]] RunStatus classify_run(std::uint64_t cycles,
                                       bool completed) const {
    return classify(cycles, completed);
  }

  /// Convenience: start + wait_idle.
  RunStatus run(const BatchLayout& batch, bool backtrace) {
    start(batch, backtrace);
    return wait_idle();
  }

  /// Issues a hardware soft reset: aborts any in-flight run and flushes
  /// the datapath. Error registers survive for post-mortem reads.
  void soft_reset() {
    accelerator_.write_reg(hw::kRegCtrl, hw::kCtrlSoftReset);
  }

  /// Drops a correlation marker onto the device's cycle trace: an instant
  /// event named `name` (args.id = `id`) on the "driver" track at the
  /// current device cycle. This is how the service layer stitches its
  /// request spans to the cycle-level device track — the shard's trace
  /// tag lands next to the fetch/align/DMA spans it caused. No-op while
  /// tracing is disabled, so callers annotate unconditionally.
  void annotate_trace(const char* name, std::uint64_t id) {
    sim::TraceSink& sink = accelerator_.trace();
    if (!sink.enabled()) return;
    sink.instant(sink.register_track("driver"), name, "service",
                 accelerator_.now(), id);
  }

  /// Reads the whole PMU bank back through the kRegPerfBase register
  /// window, 32 bits at a time, exactly as driver code on the SoC would.
  [[nodiscard]] hw::PerfSnapshot read_perf_counters() const {
    hw::PerfSnapshot snapshot;
    for (std::uint32_t i = 0; i < hw::kNumPerfCounters; ++i) {
      const std::uint64_t lo = accelerator_.read_reg(hw::perf_reg_lo(i));
      const std::uint64_t hi = accelerator_.read_reg(hw::perf_reg_hi(i));
      snapshot.set_counter(static_cast<hw::PerfIdx>(i), lo | (hi << 32));
    }
    return snapshot;
  }

  // --- Resilient batch execution --------------------------------------------

  /// One pair's final outcome from run_batch_resilient.
  struct PairOutcome {
    std::uint32_t id = 0;
    bool resolved = false;      ///< a trustworthy result was produced
    core::AlignResult result;   ///< score + CIGAR (CIGAR in BT mode only)
    bool cpu_fallback = false;  ///< resolved by the software WFA
    unsigned hw_attempts = 0;   ///< hardware launches that included it
  };

  struct ResilientConfig {
    bool backtrace = true;  ///< BT mode: CIGARs + deep stream self-checks
    /// Per-launch wait budget; generous, the watchdog usually fires first.
    std::uint64_t launch_cycle_budget = 50'000'000;
    unsigned max_launches = 256;      ///< overall guard across retries
    unsigned singleton_attempts = 2;  ///< hw tries for an isolated pair
    /// Per-pair hardware launch budget (0 = unlimited): a pair included
    /// in this many launches without a verified result degrades to the
    /// software path. Engine-level knob (drv ignores it).
    unsigned pair_attempt_budget = 0;
    /// Per-pair accelerator-cycle deadline (0 = off): once the launches a
    /// pair rode have spent this many device cycles without resolving
    /// it, it degrades to the software path. Engine-level knob.
    std::uint64_t pair_cycle_deadline = 0;
  };

  struct ResilientReport {
    std::vector<PairOutcome> outcomes;  ///< one per input pair, in order
    std::uint64_t total_cycles = 0;     ///< accelerator cycles, all launches
    unsigned launches = 0;
    unsigned retries = 0;  ///< launches beyond the first
    unsigned cpu_fallbacks = 0;

    [[nodiscard]] bool complete() const {
      for (const PairOutcome& o : outcomes) {
        if (!o.resolved) return false;
      }
      return true;
    }
  };

  /// Runs `pairs` to completion in the face of faults: launches the batch,
  /// harvests every verifiable result, bisects failing segments until the
  /// poisoned pairs are isolated (re-encoding each launch, which repairs
  /// input-region corruption), and falls back to the software WFA for
  /// pairs the hardware cannot complete (unsupported reads, band
  /// overflows, persistent faults). Every pair ends up resolved; the
  /// CIGARs of hardware- and CPU-resolved pairs agree with the core::wfa
  /// reference. Deterministic given a deterministic fault schedule.
  ResilientReport run_batch_resilient(mem::MainMemory& memory,
                                      std::span<const gen::SequencePair> pairs,
                                      std::uint64_t in_addr,
                                      std::uint64_t out_addr,
                                      const ResilientConfig& cfg);
  ResilientReport run_batch_resilient(mem::MainMemory& memory,
                                      std::span<const gen::SequencePair> pairs,
                                      std::uint64_t in_addr,
                                      std::uint64_t out_addr) {
    return run_batch_resilient(memory, pairs, in_addr, out_addr,
                               ResilientConfig{});
  }

 private:
  [[nodiscard]] RunStatus classify(std::uint64_t cycles,
                                   bool completed) const;
  /// The one polling loop behind wait_idle and wait_interrupt: steps the
  /// simulated accelerator until `done()` or the cycle budget runs out,
  /// then classifies.
  RunStatus wait_core(const std::function<bool()>& done,
                      std::uint64_t max_cycles);

  hw::Accelerator& accelerator_;
};

/// Decodes the NBT result area: `num_pairs` packed 4-byte words, four per
/// 16-byte transaction, in Collector completion order. Entries are
/// returned in stream order (not sorted by id).
[[nodiscard]] std::vector<hw::NbtResult> decode_nbt_results(
    const mem::MainMemory& memory, const BatchLayout& batch);

/// Id-ordered view of the NBT result area: decode_nbt_results re-sorted by
/// alignment id (stable for equal ids, which only corruption produces).
/// Callers that index results by id use this instead of re-sorting the
/// Collector-completion-order stream ad hoc.
[[nodiscard]] std::vector<hw::NbtResult> decode_nbt_results_sorted(
    const mem::MainMemory& memory, const BatchLayout& batch);

/// Tolerant variant for the resilient path: decodes at most the words the
/// DMA actually wrote (`beats_written * 4`), so a truncated or aborted run
/// never decodes stale/unwritten result memory as results.
[[nodiscard]] std::vector<hw::NbtResult> decode_nbt_results_partial(
    const mem::MainMemory& memory, const BatchLayout& batch,
    std::uint64_t beats_written);

/// One pair harvested from a (possibly faulted) run by
/// harvest_verified_results: either a verified alignment or a
/// deterministic hardware rejection (unsupported read, band/score
/// overflow) the caller should resolve in software.
struct HarvestedPair {
  std::uint32_t local_id = 0;  ///< launch-local alignment id
  bool hw_rejected = false;    ///< hardware inspected the pair and gave up
  core::AlignResult result;    ///< valid when !hw_rejected
};

/// Tolerant post-run harvest shared by Driver::run_batch_resilient and the
/// engine's requeue path: decodes at most what the DMA actually wrote
/// (`beat_delta` 16-byte beats past `layout.out_addr`) and keeps only
/// results that verify — in BT mode the reconstructed CIGAR must re-score
/// to the reported score; entries with out-of-range ids are dropped.
/// `pairs` are the launch-local pairs (ids 0..n-1).
[[nodiscard]] std::vector<HarvestedPair> harvest_verified_results(
    const mem::MainMemory& memory, const BatchLayout& layout,
    std::uint64_t beat_delta, bool backtrace,
    std::span<const gen::SequencePair> pairs,
    const hw::AcceleratorConfig& cfg);

}  // namespace wfasic::drv
