#include "drv/driver.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "core/wfa.hpp"
#include "drv/backtrace_cpu.hpp"

namespace wfasic::drv {

BatchLayout encode_input_set(mem::MainMemory& memory,
                             std::span<const gen::SequencePair> pairs,
                             std::uint64_t in_addr, std::uint64_t out_addr,
                             std::uint32_t force_max_read_len, bool crc,
                             std::uint32_t crc_salt) {
  std::uint32_t longest = 0;
  for (const gen::SequencePair& pair : pairs) {
    longest = std::max<std::uint32_t>(
        longest, static_cast<std::uint32_t>(
                     std::max(pair.a.size(), pair.b.size())));
  }
  const std::uint32_t max_read_len =
      force_max_read_len != 0 ? force_max_read_len
                              : hw::round_up_read_len(std::max(longest, 16u));

  BatchLayout layout;
  layout.in_addr = in_addr;
  layout.out_addr = out_addr;
  layout.max_read_len = max_read_len;
  layout.num_pairs = pairs.size();
  layout.crc = crc;
  layout.crc_salt = crc_salt;
  layout.in_bytes = pairs.size() * hw::pair_bytes(max_read_len, crc);

  // One pair's payload sections are staged in a scratch buffer so the
  // footer CRC covers exactly the section bytes the Extractor will hash.
  const std::size_t payload_bytes = hw::pair_bytes(max_read_len, false);
  std::vector<std::uint8_t> scratch(payload_bytes);
  std::uint64_t addr = in_addr;
  for (const gen::SequencePair& pair : pairs) {
    std::fill(scratch.begin(), scratch.end(), hw::kDummyBase);
    std::size_t off = 0;
    const auto put_section_u32 = [&](std::uint32_t value) {
      std::memcpy(scratch.data() + off, &value, 4);
      off += hw::kSectionBytes;
    };
    const auto put_sequence = [&](const std::string& seq) {
      // One ASCII byte per base, dummy-padded to MAX_READ_LEN. A sequence
      // longer than MAX_READ_LEN (only possible with force_max_read_len)
      // is stored truncated; its true length in the header makes the
      // Extractor reject it.
      const std::size_t stored =
          std::min<std::size_t>(seq.size(), max_read_len);
      std::memcpy(scratch.data() + off, seq.data(), stored);
      off += max_read_len;
    };
    put_section_u32(pair.id);
    put_section_u32(static_cast<std::uint32_t>(pair.a.size()));
    put_section_u32(static_cast<std::uint32_t>(pair.b.size()));
    put_sequence(pair.a);
    put_sequence(pair.b);
    WFASIC_ASSERT(off == payload_bytes, "encode_input_set: section overrun");
    memory.write(addr, scratch);
    addr += payload_bytes;
    if (crc) {
      std::uint8_t footer[hw::kSectionBytes] = {};
      const std::uint32_t value = crc32(scratch, crc_salt);
      std::memcpy(footer, &value, 4);
      memory.write(addr, footer);
      addr += hw::kSectionBytes;
    }
  }
  WFASIC_ASSERT(addr == in_addr + layout.in_bytes,
                "encode_input_set: layout size mismatch");
  return layout;
}

void Driver::start(const BatchLayout& batch, bool backtrace,
                   bool enable_interrupt) {
  WFASIC_REQUIRE(batch.crc == accelerator_.config().crc,
                 "Driver::start: batch CRC mode disagrees with the device");
  accelerator_.write_reg(hw::kRegCrcSalt, batch.crc_salt);
  accelerator_.write_reg(hw::kRegBtEnable, backtrace ? 1u : 0u);
  accelerator_.write_reg(hw::kRegMaxReadLen, batch.max_read_len);
  accelerator_.write_reg(hw::kRegInAddrLo,
                         static_cast<std::uint32_t>(batch.in_addr));
  accelerator_.write_reg(hw::kRegInAddrHi,
                         static_cast<std::uint32_t>(batch.in_addr >> 32));
  accelerator_.write_reg(hw::kRegInSizeLo,
                         static_cast<std::uint32_t>(batch.in_bytes));
  accelerator_.write_reg(hw::kRegInSizeHi,
                         static_cast<std::uint32_t>(batch.in_bytes >> 32));
  accelerator_.write_reg(hw::kRegOutAddrLo,
                         static_cast<std::uint32_t>(batch.out_addr));
  accelerator_.write_reg(hw::kRegOutAddrHi,
                         static_cast<std::uint32_t>(batch.out_addr >> 32));
  accelerator_.write_reg(hw::kRegIntEnable, enable_interrupt ? 1u : 0u);
  // Stale error causes from a previous run would mis-classify this one;
  // clearing the counter too makes RunStatus::err_count a per-run figure.
  accelerator_.write_reg(hw::kRegErrStatus, 0xffffffffu);
  accelerator_.write_reg(hw::kRegErrCount, 0);
  accelerator_.write_reg(hw::kRegCtrl, hw::kCtrlStart);
}

RunStatus Driver::classify(std::uint64_t cycles, bool completed) const {
  RunStatus status;
  status.cycles = cycles;
  status.err_status = accelerator_.read_reg(hw::kRegErrStatus);
  status.err_count = accelerator_.read_reg(hw::kRegErrCount);
  // Complete PMU snapshot on every path, error or clean: classify() is
  // the only RunStatus producer, so no caller can return a stale or
  // partial snapshot.
  status.perf = read_perf_counters();
  if (!completed) {
    status.outcome = RunOutcome::kTimeout;
  } else if ((status.err_status & hw::kErrDma) != 0) {
    status.outcome = RunOutcome::kDmaError;
  } else if ((status.err_status & hw::kErrEccUnc) != 0) {
    status.outcome = RunOutcome::kDataError;
  } else if ((status.err_status & hw::kErrWatchdog) != 0) {
    status.outcome = RunOutcome::kTimeout;
  } else if ((status.err_status & (hw::kErrUnsupported | hw::kErrCrc)) != 0) {
    status.outcome = RunOutcome::kPartial;
  }
  return status;
}

RunStatus Driver::wait_core(const std::function<bool()>& done,
                            std::uint64_t max_cycles) {
  // Event-driven wait instead of one virtual step() per cycle: the
  // accelerator advances event to event (bulk-advancing quiet spans) and
  // evaluates the predicate wherever simulated state can change, so the
  // stop cycle is identical to per-cycle polling while a wait costs
  // O(events). Both wait conditions (Idle, interrupt pending) flip only
  // when the accelerator leaves the running state — an active-cycle
  // boundary by definition. While already idle with nothing scheduled,
  // the remaining budget is burned in one bulk advance, exactly as the
  // per-cycle loop would count it.
  const sim::cycle_t begin = accelerator_.now();
  accelerator_.run_until_event(done, max_cycles);
  return classify(accelerator_.now() - begin, done());
}

RunStatus Driver::wait_idle(std::uint64_t max_cycles) {
  return wait_core([this] { return accelerator_.idle(); }, max_cycles);
}

Driver::CheckpointRun Driver::wait_idle_checkpointed(
    std::uint64_t checkpoint_interval, std::uint64_t max_cycles) {
  WFASIC_REQUIRE(checkpoint_interval > 0,
                 "Driver::wait_idle_checkpointed: interval must be positive");
  CheckpointRun run;
  const sim::cycle_t begin = accelerator_.now();
  const auto idle = [this] { return accelerator_.idle(); };
  std::uint64_t remaining = max_cycles;
  while (remaining > 0 && !idle()) {
    const std::uint64_t slice = std::min(checkpoint_interval, remaining);
    // Slicing one long wait into interval-sized run_until_event calls is
    // bit-identical to the unsliced wait: each call stops either on the
    // predicate or at its cycle budget, and exits at a safe point.
    const std::uint64_t stepped = accelerator_.run_until_event(idle, slice);
    remaining -= std::min(stepped, remaining);
    if (!idle() && stepped == slice) {
      run.last_checkpoint = accelerator_.snapshot();
      run.checkpoint_cycle = accelerator_.now();
      ++run.status.checkpoints;
    }
    if (stepped == 0 && !idle()) break;  // budget pinned to zero progress
  }
  RunStatus classified = classify(accelerator_.now() - begin, idle());
  classified.checkpoints = run.status.checkpoints;
  run.status = classified;
  return run;
}

Driver::CheckpointRun Driver::resume_checkpointed(
    std::span<const std::uint8_t> blob, std::uint64_t checkpoint_interval,
    std::uint64_t max_cycles) {
  if (const auto err = accelerator_.restore(blob)) {
    // A rejected blob must never be resumed as if it applied: surface the
    // typed cause and classify loudly instead of touching the device.
    CheckpointRun run;
    run.restore_error = err;
    run.status.outcome = RunOutcome::kDataError;
    return run;
  }
  CheckpointRun run = wait_idle_checkpointed(checkpoint_interval, max_cycles);
  run.status.restores = 1;
  return run;
}

RunStatus Driver::wait_interrupt(std::uint64_t max_cycles) {
  WFASIC_REQUIRE(accelerator_.read_reg(hw::kRegIntEnable) == 1u,
                 "Driver::wait_interrupt: interrupt not enabled at start");
  const RunStatus status = wait_core(
      [this] { return accelerator_.interrupt_pending(); }, max_cycles);
  if (accelerator_.interrupt_pending()) {
    accelerator_.write_reg(hw::kRegIntStatus, 1u);  // acknowledge
  }
  return status;
}

Driver::ResilientReport Driver::run_batch_resilient(
    mem::MainMemory& memory, std::span<const gen::SequencePair> pairs,
    std::uint64_t in_addr, std::uint64_t out_addr,
    const ResilientConfig& cfg) {
  const hw::AcceleratorConfig& hw_cfg = accelerator_.config();
  WFASIC_REQUIRE(pairs.size() <= (cfg.backtrace ? (1u << 23) : (1u << 16)),
                 "run_batch_resilient: batch exceeds the result-ID width");

  ResilientReport report;
  report.outcomes.resize(pairs.size());
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    report.outcomes[idx].id = pairs[idx].id;
  }

  // The software fallback: scalar WFA (copes with 'N' bases) without the
  // hardware's band and score cap, so it completes every pair the chip
  // cannot. Where the band does not bind, scores and CIGARs match the
  // hardware bit for bit (shared Eq.-3 kernel).
  core::WfaConfig ref_cfg;
  ref_cfg.pen = hw_cfg.pen;
  ref_cfg.traceback = cfg.backtrace ? core::Traceback::kEnabled
                                    : core::Traceback::kDisabled;
  ref_cfg.extend = core::ExtendMode::kScalar;
  core::WfaAligner fallback(ref_cfg);
  const auto resolve_on_cpu = [&](std::size_t idx) {
    PairOutcome& out = report.outcomes[idx];
    out.result = fallback.align(pairs[idx].a, pairs[idx].b);
    out.resolved = true;
    out.cpu_fallback = true;
    ++report.cpu_fallbacks;
  };

  // Pre-screen: a pair too long for the chip would make Accelerator::start
  // reject the whole launch; it goes straight to the software path.
  std::vector<std::size_t> initial;
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    const std::size_t longest =
        std::max(pairs[idx].a.size(), pairs[idx].b.size());
    const std::uint32_t rounded = hw::round_up_read_len(
        std::max<std::uint32_t>(static_cast<std::uint32_t>(longest), 16));
    if (rounded > hw_cfg.max_supported_read_len) {
      resolve_on_cpu(idx);
    } else {
      initial.push_back(idx);
    }
  }

  std::deque<std::vector<std::size_t>> work;
  if (!initial.empty()) work.push_back(std::move(initial));
  std::vector<unsigned> isolated_tries(pairs.size(), 0);

  while (!work.empty() && report.launches < cfg.max_launches) {
    const std::vector<std::size_t> seg = std::move(work.front());
    work.pop_front();
    if (seg.size() == 1) ++isolated_tries[seg[0]];

    // Re-encoding every launch is deliberate: it repairs any bit flips a
    // campaign event landed in the input region. Pairs get launch-local
    // ids 0..n-1, mapped back through `seg` (the hardware ID fields are
    // narrow and caller ids need not be dense).
    std::vector<gen::SequencePair> launch_pairs;
    launch_pairs.reserve(seg.size());
    for (std::size_t local = 0; local < seg.size(); ++local) {
      launch_pairs.push_back({static_cast<std::uint32_t>(local),
                              pairs[seg[local]].a, pairs[seg[local]].b});
    }
    // A fresh salt per launch: stale-but-well-formed result records left
    // by an earlier launch (e.g. after a dropped write beat) can then
    // never verify against this launch's CRCs.
    const BatchLayout layout =
        encode_input_set(memory, launch_pairs, in_addr, out_addr,
                         /*force_max_read_len=*/0, hw_cfg.crc,
                         /*crc_salt=*/report.launches + 1);
    const std::uint64_t beats_before = accelerator_.dma().beats_written();
    if (report.launches > 0) ++report.retries;
    ++report.launches;
    for (std::size_t idx : seg) ++report.outcomes[idx].hw_attempts;

    start(layout, cfg.backtrace);
    const RunStatus status = wait_idle(cfg.launch_cycle_budget);
    report.total_cycles += status.cycles;
    // A watchdog/DMA abort leaves the accelerator flushed and idle; only a
    // wait-budget timeout needs an explicit soft reset before relaunching.
    if (!accelerator_.idle()) soft_reset();

    // Harvest every verifiable result the run managed to write out —
    // bounded by the beats the DMA actually wrote, so an aborted run never
    // decodes stale memory.
    std::vector<bool> resolved_local(seg.size(), false);
    const std::uint64_t beat_delta =
        accelerator_.dma().beats_written() - beats_before;
    for (const HarvestedPair& h : harvest_verified_results(
             memory, layout, beat_delta, cfg.backtrace, launch_pairs,
             hw_cfg)) {
      const std::size_t idx = seg[h.local_id];
      if (report.outcomes[idx].resolved) continue;
      if (h.hw_rejected) {
        // The hardware inspected the pair and gave up (unsupported read,
        // band/score overflow). That is deterministic — retrying cannot
        // help, the software path can.
        resolve_on_cpu(idx);
      } else {
        report.outcomes[idx].result = h.result;
        report.outcomes[idx].resolved = true;
      }
      resolved_local[h.local_id] = true;
    }

    std::vector<std::size_t> unresolved;
    for (std::size_t local = 0; local < seg.size(); ++local) {
      if (!resolved_local[local] &&
          !report.outcomes[seg[local]].resolved) {
        unresolved.push_back(seg[local]);
      }
    }
    if (unresolved.empty()) continue;
    if (unresolved.size() == 1) {
      // Isolated pair: a few more hardware tries (transient faults fade;
      // the schedule is finite), then degrade to the software path.
      const std::size_t idx = unresolved[0];
      if (isolated_tries[idx] >= cfg.singleton_attempts) {
        resolve_on_cpu(idx);
      } else {
        work.push_back({idx});
      }
    } else {
      // Bisect: split the failing segment until the poisoned pair is
      // isolated. Healthy halves complete on the next launch.
      const auto mid =
          unresolved.begin() +
          static_cast<std::ptrdiff_t>(unresolved.size() / 2);
      work.emplace_back(unresolved.begin(), mid);
      work.emplace_back(mid, unresolved.end());
    }
  }

  // Launch guard exhausted (or pathological schedule): whatever is still
  // unresolved completes in software. The batch never fails as a whole.
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    if (!report.outcomes[idx].resolved) resolve_on_cpu(idx);
  }
  return report;
}

namespace {

/// Salted CRC-32 over one packed NBT result word, as the Collector
/// computes it for the 8-byte record format.
std::uint32_t nbt_record_crc(std::uint32_t word, std::uint32_t salt) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(word), static_cast<std::uint8_t>(word >> 8),
      static_cast<std::uint8_t>(word >> 16),
      static_cast<std::uint8_t>(word >> 24)};
  return crc32(std::span<const std::uint8_t>(bytes, 4), salt);
}

}  // namespace

std::vector<hw::NbtResult> decode_nbt_results(const mem::MainMemory& memory,
                                              const BatchLayout& batch) {
  const std::size_t stride = hw::nbt_record_bytes(batch.crc);
  std::vector<hw::NbtResult> results;
  results.reserve(batch.num_pairs);
  for (std::size_t idx = 0; idx < batch.num_pairs; ++idx) {
    const std::uint64_t addr = batch.out_addr + idx * stride;
    const std::uint32_t word = memory.read_u32(addr);
    if (batch.crc) {
      WFASIC_REQUIRE(
          memory.read_u32(addr + 4) == nbt_record_crc(word, batch.crc_salt),
          "decode_nbt_results: result record failed its CRC");
    }
    results.push_back(hw::unpack_nbt_result(word));
  }
  return results;
}

std::vector<hw::NbtResult> decode_nbt_results_sorted(
    const mem::MainMemory& memory, const BatchLayout& batch) {
  std::vector<hw::NbtResult> results = decode_nbt_results(memory, batch);
  std::stable_sort(results.begin(), results.end(),
                   [](const hw::NbtResult& x, const hw::NbtResult& y) {
                     return x.id < y.id;
                   });
  return results;
}

std::vector<hw::NbtResult> decode_nbt_results_partial(
    const mem::MainMemory& memory, const BatchLayout& batch,
    std::uint64_t beats_written) {
  const std::size_t stride = hw::nbt_record_bytes(batch.crc);
  const std::uint64_t available =
      beats_written * hw::nbt_records_per_beat(batch.crc);
  const std::size_t count = static_cast<std::size_t>(
      std::min<std::uint64_t>(batch.num_pairs, available));
  std::vector<hw::NbtResult> results;
  results.reserve(count);
  for (std::size_t idx = 0; idx < count; ++idx) {
    const std::uint64_t addr = batch.out_addr + idx * stride;
    const std::uint32_t word = memory.read_u32(addr);
    if (batch.crc &&
        memory.read_u32(addr + 4) != nbt_record_crc(word, batch.crc_salt)) {
      // A corrupted or dropped write beat (the salt also defeats stale
      // records of an earlier launch): drop the record, the pair retries.
      continue;
    }
    results.push_back(hw::unpack_nbt_result(word));
  }
  return results;
}

std::vector<HarvestedPair> harvest_verified_results(
    const mem::MainMemory& memory, const BatchLayout& layout,
    std::uint64_t beat_delta, bool backtrace,
    std::span<const gen::SequencePair> pairs,
    const hw::AcceleratorConfig& cfg) {
  std::vector<HarvestedPair> harvested;
  if (backtrace) {
    const BtStreamScan scan = try_parse_bt_stream(
        memory, layout.out_addr, beat_delta * mem::kBeatBytes, pairs.size(),
        layout.crc, layout.crc_salt);
    for (const BtAlignment& bt : scan.alignments) {
      if (bt.id >= pairs.size()) continue;  // corrupted id field
      if (!bt.success) {
        harvested.push_back({bt.id, true, {}});
        continue;
      }
      const std::optional<core::AlignResult> rebuilt =
          try_reconstruct_alignment(bt, pairs[bt.id].a, pairs[bt.id].b, cfg);
      if (rebuilt.has_value() && rebuilt->ok &&
          rebuilt->cigar.score(cfg.pen) == rebuilt->score) {
        harvested.push_back({bt.id, false, *rebuilt});
      }
      // else: stream damage slipped past the parser; the pair retries.
    }
  } else {
    for (const hw::NbtResult& nbt :
         decode_nbt_results_partial(memory, layout, beat_delta)) {
      if (nbt.id >= pairs.size()) continue;
      HarvestedPair h;
      h.local_id = nbt.id;
      if (!nbt.success) {
        h.hw_rejected = true;
      } else {
        h.result.ok = true;
        h.result.score = static_cast<score_t>(nbt.score);
      }
      harvested.push_back(std::move(h));
    }
  }
  return harvested;
}

}  // namespace wfasic::drv
