#include "drv/driver.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wfasic::drv {

BatchLayout encode_input_set(mem::MainMemory& memory,
                             std::span<const gen::SequencePair> pairs,
                             std::uint64_t in_addr, std::uint64_t out_addr,
                             std::uint32_t force_max_read_len) {
  std::uint32_t longest = 0;
  for (const gen::SequencePair& pair : pairs) {
    longest = std::max<std::uint32_t>(
        longest, static_cast<std::uint32_t>(
                     std::max(pair.a.size(), pair.b.size())));
  }
  const std::uint32_t max_read_len =
      force_max_read_len != 0 ? force_max_read_len
                              : hw::round_up_read_len(std::max(longest, 16u));

  BatchLayout layout;
  layout.in_addr = in_addr;
  layout.out_addr = out_addr;
  layout.max_read_len = max_read_len;
  layout.num_pairs = pairs.size();
  layout.in_bytes = pairs.size() * hw::pair_bytes(max_read_len);

  std::uint64_t addr = in_addr;
  const auto write_section_u32 = [&](std::uint32_t value) {
    std::uint8_t section[hw::kSectionBytes] = {};
    std::memcpy(section, &value, 4);
    memory.write(addr, section);
    addr += hw::kSectionBytes;
  };
  const auto write_sequence = [&](const std::string& seq) {
    // One ASCII byte per base, dummy-padded to MAX_READ_LEN. A sequence
    // longer than MAX_READ_LEN (only possible with force_max_read_len) is
    // stored truncated; its true length in the header makes the Extractor
    // reject it.
    std::vector<std::uint8_t> padded(max_read_len, hw::kDummyBase);
    const std::size_t stored = std::min<std::size_t>(seq.size(), max_read_len);
    std::memcpy(padded.data(), seq.data(), stored);
    memory.write(addr, padded);
    addr += max_read_len;
  };

  for (const gen::SequencePair& pair : pairs) {
    write_section_u32(pair.id);
    write_section_u32(static_cast<std::uint32_t>(pair.a.size()));
    write_section_u32(static_cast<std::uint32_t>(pair.b.size()));
    write_sequence(pair.a);
    write_sequence(pair.b);
  }
  WFASIC_ASSERT(addr == in_addr + layout.in_bytes,
                "encode_input_set: layout size mismatch");
  return layout;
}

void Driver::start(const BatchLayout& batch, bool backtrace,
                   bool enable_interrupt) {
  accelerator_.write_reg(hw::kRegBtEnable, backtrace ? 1u : 0u);
  accelerator_.write_reg(hw::kRegMaxReadLen, batch.max_read_len);
  accelerator_.write_reg(hw::kRegInAddrLo,
                         static_cast<std::uint32_t>(batch.in_addr));
  accelerator_.write_reg(hw::kRegInAddrHi,
                         static_cast<std::uint32_t>(batch.in_addr >> 32));
  accelerator_.write_reg(hw::kRegInSizeLo,
                         static_cast<std::uint32_t>(batch.in_bytes));
  accelerator_.write_reg(hw::kRegInSizeHi,
                         static_cast<std::uint32_t>(batch.in_bytes >> 32));
  accelerator_.write_reg(hw::kRegOutAddrLo,
                         static_cast<std::uint32_t>(batch.out_addr));
  accelerator_.write_reg(hw::kRegOutAddrHi,
                         static_cast<std::uint32_t>(batch.out_addr >> 32));
  accelerator_.write_reg(hw::kRegIntEnable, enable_interrupt ? 1u : 0u);
  accelerator_.write_reg(hw::kRegCtrl, 1u);
}

std::uint64_t Driver::wait_idle(std::uint64_t max_cycles) {
  return accelerator_.run_to_completion(max_cycles);
}

std::uint64_t Driver::wait_interrupt(std::uint64_t max_cycles) {
  WFASIC_REQUIRE(accelerator_.read_reg(hw::kRegIntEnable) == 1u,
                 "Driver::wait_interrupt: interrupt not enabled at start");
  const std::uint64_t cycles = accelerator_.run_to_completion(max_cycles);
  WFASIC_REQUIRE(accelerator_.interrupt_pending(),
                 "Driver::wait_interrupt: completion without interrupt");
  accelerator_.write_reg(hw::kRegIntStatus, 1u);  // acknowledge
  return cycles;
}

std::vector<hw::NbtResult> decode_nbt_results(const mem::MainMemory& memory,
                                              const BatchLayout& batch) {
  std::vector<hw::NbtResult> results;
  results.reserve(batch.num_pairs);
  for (std::size_t idx = 0; idx < batch.num_pairs; ++idx) {
    const std::uint64_t addr = batch.out_addr + idx * 4;
    results.push_back(hw::unpack_nbt_result(memory.read_u32(addr)));
  }
  return results;
}

}  // namespace wfasic::drv
