// CPU-side backtrace of the accelerator's output stream (§4.5).
//
// Two methods, matching the paper's Figure 11 configurations:
//  - single-Aligner ("No Sep"): the stream is consecutive per alignment;
//    the CPU only identifies boundaries (Last flags) and walks in place.
//  - multi-Aligner ("Sep"): transactions of different alignments
//    interleave, so the CPU first separates them by alignment ID into
//    per-alignment buffers (the expensive copy pass), then walks.
//
// The walk decodes the 5-bit origin codes from (score, diagonal) cell
// coordinates using the deterministic wavefront geometry, collects the
// difference operations, and finally re-traverses the two sequences to
// insert the matches between differences (§4.5).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/align_result.hpp"
#include "cpu/cpu_model.hpp"
#include "hw/config.hpp"
#include "mem/main_memory.hpp"

namespace wfasic::drv {

/// One alignment's reassembled backtrace data.
struct BtAlignment {
  std::uint32_t id = 0;
  bool success = false;
  std::uint16_t score = 0;
  std::int16_t k_reached = 0;
  /// Concatenated 10-byte transaction payloads in counter order (the
  /// score-record transaction excluded).
  std::vector<std::uint8_t> payload;
};

/// Parses the output stream at `out_addr` until `num_pairs` Last flags
/// have been seen.
///
/// `separate_data == false` is the single-Aligner method and *requires* a
/// non-interleaved stream (aborts otherwise); `true` is the multi-Aligner
/// method and charges the separation copies to `counters`.
///
/// With `crc` (AcceleratorConfig::crc), every alignment's beats are
/// accumulated into a salted CRC-32 and checked against the footer
/// transaction the Collector emitted after its Last beat; a mismatch or a
/// missing footer aborts (this is the strict parser — use
/// try_parse_bt_stream for tolerant recovery).
[[nodiscard]] std::vector<BtAlignment> parse_bt_stream(
    const mem::MainMemory& memory, std::uint64_t out_addr,
    std::size_t num_pairs, bool separate_data,
    cpu::BtCpuCounters* counters = nullptr, bool crc = false,
    std::uint32_t crc_salt = 0);

/// Tolerant stream scan for the resilient driver (error-path recovery):
/// unlike parse_bt_stream it never aborts — it reads at most `max_bytes`
/// (bound it by the beats the DMA actually wrote), drops alignments whose
/// transactions are inconsistent, and reports whether anomalies were seen.
struct BtStreamScan {
  std::vector<BtAlignment> alignments;  ///< complete, internally consistent
  bool clean = true;  ///< false: counter gaps, truncation, or dropped data
};
/// With `crc`, an alignment is only accepted once a footer transaction
/// carrying the matching salted CRC-32 over all its beats has been seen —
/// write-path corruption and dropped beats (including stale beats of an
/// earlier launch, defeated by the per-launch salt) are then rejected here
/// instead of escaping as silently wrong CIGARs.
[[nodiscard]] BtStreamScan try_parse_bt_stream(const mem::MainMemory& memory,
                                               std::uint64_t out_addr,
                                               std::uint64_t max_bytes,
                                               std::size_t num_pairs,
                                               bool crc = false,
                                               std::uint32_t crc_salt = 0);

/// Rebuilds the full alignment (score + CIGAR) of (a, b) from backtrace
/// data, replaying the wavefront geometry to locate each cell's origin
/// bits and inserting matches by traversing the sequences.
[[nodiscard]] core::AlignResult reconstruct_alignment(
    const BtAlignment& bt, std::string_view a, std::string_view b,
    const hw::AcceleratorConfig& cfg, cpu::BtCpuCounters* counters = nullptr);

/// Non-aborting variant for the resilient driver: returns std::nullopt
/// (with the failing check's message in *why, if given) when the backtrace
/// data is inconsistent with the sequences or the wavefront geometry. The
/// deep self-checks double as corruption detectors: a stream damaged in
/// flight is rejected here instead of killing the process.
[[nodiscard]] std::optional<core::AlignResult> try_reconstruct_alignment(
    const BtAlignment& bt, std::string_view a, std::string_view b,
    const hw::AcceleratorConfig& cfg, const char** why = nullptr,
    cpu::BtCpuCounters* counters = nullptr);

}  // namespace wfasic::drv
