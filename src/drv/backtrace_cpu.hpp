// CPU-side backtrace of the accelerator's output stream (§4.5).
//
// Two methods, matching the paper's Figure 11 configurations:
//  - single-Aligner ("No Sep"): the stream is consecutive per alignment;
//    the CPU only identifies boundaries (Last flags) and walks in place.
//  - multi-Aligner ("Sep"): transactions of different alignments
//    interleave, so the CPU first separates them by alignment ID into
//    per-alignment buffers (the expensive copy pass), then walks.
//
// The walk decodes the 5-bit origin codes from (score, diagonal) cell
// coordinates using the deterministic wavefront geometry, collects the
// difference operations, and finally re-traverses the two sequences to
// insert the matches between differences (§4.5).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/align_result.hpp"
#include "cpu/cpu_model.hpp"
#include "hw/config.hpp"
#include "mem/main_memory.hpp"

namespace wfasic::drv {

/// One alignment's reassembled backtrace data.
struct BtAlignment {
  std::uint32_t id = 0;
  bool success = false;
  std::uint16_t score = 0;
  std::int16_t k_reached = 0;
  /// Concatenated 10-byte transaction payloads in counter order (the
  /// score-record transaction excluded).
  std::vector<std::uint8_t> payload;
};

/// Parses the output stream at `out_addr` until `num_pairs` Last flags
/// have been seen.
///
/// `separate_data == false` is the single-Aligner method and *requires* a
/// non-interleaved stream (aborts otherwise); `true` is the multi-Aligner
/// method and charges the separation copies to `counters`.
[[nodiscard]] std::vector<BtAlignment> parse_bt_stream(
    const mem::MainMemory& memory, std::uint64_t out_addr,
    std::size_t num_pairs, bool separate_data,
    cpu::BtCpuCounters* counters = nullptr);

/// Rebuilds the full alignment (score + CIGAR) of (a, b) from backtrace
/// data, replaying the wavefront geometry to locate each cell's origin
/// bits and inserting matches by traversing the sequences.
[[nodiscard]] core::AlignResult reconstruct_alignment(
    const BtAlignment& bt, std::string_view a, std::string_view b,
    const hw::AcceleratorConfig& cfg, cpu::BtCpuCounters* counters = nullptr);

}  // namespace wfasic::drv
