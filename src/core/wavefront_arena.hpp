// A pool allocator for core::Wavefront: recycles wavefront buffers across
// scores and across align() calls instead of churning one heap allocation
// (three vectors) per score.
//
// The arena is deliberately not thread-safe: each worker thread owns its
// own arena (SwBackend keys one persistent WfaAligner — and therefore one
// arena — per parallel_for worker). Trace addresses are unaffected: the
// synthetic trace_base consumed by the CPU cache model is assigned by the
// aligner's bump pointer, never derived from the real allocation.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/wavefront.hpp"

namespace wfasic::core {

class WavefrontArena {
 public:
  /// Returns a wavefront initialised for [lo, hi], reusing a recycled
  /// buffer when one is available.
  [[nodiscard]] std::unique_ptr<Wavefront> acquire(diag_t lo, diag_t hi) {
    if (!free_.empty()) {
      std::unique_ptr<Wavefront> wf = std::move(free_.back());
      free_.pop_back();
      wf->reset(lo, hi);
      return wf;
    }
    return std::make_unique<Wavefront>(lo, hi);
  }

  /// Returns a wavefront to the pool. Null pointers are accepted and
  /// ignored so callers can release slots unconditionally.
  void release(std::unique_ptr<Wavefront> wf) {
    if (wf != nullptr) free_.push_back(std::move(wf));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Wavefront>> free_;
};

}  // namespace wfasic::core
