// The WaveFront Alignment algorithm (Marco-Sola et al. 2021; Eq. 3 of the
// WFAsic paper): exact gap-affine alignment in O(n*s) time.
//
// This is the software reference the accelerator is compared against
// (the paper's "WFA-CPU" baseline, [14]) and the ground truth for the
// hardware model's scores and backtrace. It supports:
//   - full traceback (stores all wavefronts) or score-only (ring buffer),
//   - scalar or 16-base blocked extension (the "CPU vector code" stand-in),
//   - a hardware-style diagonal band limit k_max and a score cap,
//   - an instrumentation probe feeding the CPU timing model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/packed_seq.hpp"
#include "common/types.hpp"
#include "core/align_result.hpp"
#include "core/wavefront.hpp"
#include "core/wavefront_arena.hpp"
#include "core/wfa_kernel.hpp"

namespace wfasic::core {

/// How the extend() operator compares bases.
enum class ExtendMode {
  kScalar,   ///< one base per step (the paper's CPU scalar code)
  kBlocked,  ///< 16 bases per step on 2-bit packed words ("vector" code)
};

/// Adaptive wavefront reduction (the WFA paper's heuristic mode): after
/// each extension, diagonals whose remaining distance to the end is far
/// worse than the best are dropped from the wavefront edges. Trades
/// exactness for speed; the ASIC never uses it (it is an exact design).
struct WfaHeuristic {
  bool enabled = false;
  /// Never reduce below this many diagonals.
  std::size_t min_wavefront_length = 10;
  /// Drop edge diagonals whose distance exceeds the best by more than this.
  offset_t max_distance_threshold = 50;
};

struct WfaConfig {
  Penalties pen = kDefaultPenalties;
  Traceback traceback = Traceback::kEnabled;
  ExtendMode extend = ExtendMode::kScalar;
  /// Force the reference extend kernels (byte-wise for kScalar, 16-base
  /// blocks for kBlocked) instead of the default 64-bit XOR+ctz
  /// word-parallel kernel. Scores, CIGARs and every probe counter are
  /// bit-identical either way (enforced by tests/test_perf_equivalence);
  /// the flag exists for differential testing and exists only on the
  /// host — the ExtendMode still selects whose cost model the probe
  /// counters follow.
  bool reference_extend = false;
  /// Maximum alignment score before giving up (< 0: derive the always-
  /// sufficient bound from the sequence lengths).
  score_t max_score = -1;
  /// Diagonal band limit (the hardware's k_max, §4.3.1): wavefronts never
  /// grow past |k| <= k_max. < 0 means unlimited. With a band, alignments
  /// needing more diagonals fail (ok = false), as in the ASIC.
  diag_t k_max = -1;
  WfaHeuristic heuristic;
};

/// Instrumentation counters for the CPU cost model (src/cpu). All counters
/// accumulate across align() calls; reset with WfaProbe::reset().
struct WfaProbe {
  std::uint64_t score_iterations = 0;  ///< scores visited (incl. null WFs)
  std::uint64_t wavefronts_computed = 0;
  std::uint64_t cells_computed = 0;   ///< frame-column cells (M+I+D trio)
  std::uint64_t extend_cells = 0;     ///< cells extended
  std::uint64_t chars_compared = 0;   ///< scalar base comparisons
  std::uint64_t blocks_compared = 0;  ///< 16-base block comparisons
  std::uint64_t wf_cells_read = 0;    ///< source-offset loads in compute
  std::uint64_t wf_cells_written = 0;
  std::uint64_t bt_steps = 0;         ///< backtrace loop iterations
  std::uint64_t wf_bytes_allocated = 0;
  std::uint64_t peak_live_wf_bytes = 0;

  /// Optional synthetic memory trace (address, size, is_write) consumed by
  /// the cache simulator. Leave empty to skip trace generation.
  std::function<void(std::uint64_t addr, std::uint32_t size, bool is_write)>
      mem_trace;

  void reset() {
    auto saved = std::move(mem_trace);
    *this = WfaProbe{};
    mem_trace = std::move(saved);
  }
};

/// Exact gap-affine pairwise aligner based on wavefronts. Wavefront
/// buffers are recycled through a per-aligner arena across align() calls,
/// so a long-lived aligner amortises its allocations; aligners are cheap
/// to keep around and are not thread-safe (use one per worker thread).
class WfaAligner {
 public:
  explicit WfaAligner(WfaConfig cfg = {});

  /// Aligns pattern `a` (vertical axis, consumed by M/X/D) against text `b`
  /// (horizontal axis, consumed by M/X/I).
  [[nodiscard]] AlignResult align(std::string_view a, std::string_view b);

  /// Replaces the configuration, keeping the probe and the wavefront arena
  /// (pooled-aligner reuse across jobs with differing traceback modes).
  void reconfigure(const WfaConfig& cfg);

  [[nodiscard]] const WfaConfig& config() const { return cfg_; }
  [[nodiscard]] const WfaProbe& probe() const { return probe_; }
  [[nodiscard]] WfaProbe& probe() { return probe_; }
  [[nodiscard]] const WavefrontArena& arena() const { return arena_; }

  /// The always-sufficient score bound for sequences of these lengths:
  /// delete all of a, insert all of b.
  [[nodiscard]] static score_t worst_case_score(std::size_t a_len,
                                                std::size_t b_len,
                                                const Penalties& pen);

 private:
  struct Run;  // per-alignment state, defined in wfa.cpp

  WfaConfig cfg_;
  WfaProbe probe_;
  WavefrontArena arena_;
};

}  // namespace wfasic::core
