// Common result type for all pairwise aligners in this library.
#pragma once

#include <string>

#include "common/cigar.hpp"
#include "common/types.hpp"

namespace wfasic::core {

/// Outcome of a pairwise alignment.
///
/// `ok == false` means the aligner gave up (score or k limit exceeded —
/// the hardware's Success=0 case); `score`/`cigar` are then meaningless.
struct AlignResult {
  bool ok = false;
  score_t score = 0;
  Cigar cigar;  ///< empty when backtrace was not requested
};

/// Whether an aligner should produce the edit transcript or just the score
/// (the accelerator's backtrace enable/disable switch, §4.1).
enum class Traceback { kDisabled, kEnabled };

}  // namespace wfasic::core
