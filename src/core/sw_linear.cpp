#include "core/sw_linear.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::core {

AlignResult align_sw_linear(std::string_view a, std::string_view b,
                            const LinearPenalties& pen, Traceback traceback) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // H[i][j] = best distance aligning a[0,i) to b[0,j), row-major (m+1 wide).
  std::vector<score_t> h((n + 1) * (m + 1), 0);
  auto H = [&](std::size_t i, std::size_t j) -> score_t& {
    return h[i * (m + 1) + j];
  };
  for (std::size_t j = 1; j <= m; ++j) H(0, j) = static_cast<score_t>(j) * pen.gap;
  for (std::size_t i = 1; i <= n; ++i) H(i, 0) = static_cast<score_t>(i) * pen.gap;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const score_t diag =
          H(i - 1, j - 1) + (a[i - 1] == b[j - 1] ? 0 : pen.mismatch);
      const score_t up = H(i - 1, j) + pen.gap;     // deletion (consume a)
      const score_t left = H(i, j - 1) + pen.gap;   // insertion (consume b)
      H(i, j) = std::min({diag, up, left});
    }
  }

  AlignResult result;
  result.ok = true;
  result.score = H(n, m);
  if (traceback == Traceback::kDisabled) return result;

  // Backtrace by recomputing which neighbour produced each cell.
  std::size_t i = n;
  std::size_t j = m;
  Cigar& cig = result.cigar;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0) {
      const score_t diag_cost = a[i - 1] == b[j - 1] ? 0 : pen.mismatch;
      if (H(i, j) == H(i - 1, j - 1) + diag_cost) {
        cig.push(diag_cost == 0 ? CigarOp::kMatch : CigarOp::kMismatch);
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && H(i, j) == H(i - 1, j) + pen.gap) {
      cig.push(CigarOp::kDeletion);
      --i;
      continue;
    }
    WFASIC_ASSERT(j > 0 && H(i, j) == H(i, j - 1) + pen.gap,
                  "sw_linear backtrace: no predecessor matches");
    cig.push(CigarOp::kInsertion);
    --j;
  }
  cig.reverse();
  return result;
}

}  // namespace wfasic::core
