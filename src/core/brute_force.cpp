#include "core/brute_force.hpp"

#include <algorithm>

namespace wfasic::core {
namespace {

enum class Last { kNone, kIns, kDel };

score_t search(std::string_view a, std::string_view b, std::size_t i,
               std::size_t j, Last last, const Penalties& pen) {
  if (i == a.size() && j == b.size()) return 0;
  score_t best = kScoreInf;
  if (i < a.size() && j < b.size()) {
    const score_t step = a[i] == b[j] ? 0 : pen.mismatch;
    best = std::min(best,
                    step + search(a, b, i + 1, j + 1, Last::kNone, pen));
  }
  if (j < b.size()) {  // insertion: consume one base of b
    const score_t step =
        last == Last::kIns ? pen.gap_extend : pen.open_total();
    best = std::min(best, step + search(a, b, i, j + 1, Last::kIns, pen));
  }
  if (i < a.size()) {  // deletion: consume one base of a
    const score_t step =
        last == Last::kDel ? pen.gap_extend : pen.open_total();
    best = std::min(best, step + search(a, b, i + 1, j, Last::kDel, pen));
  }
  return best;
}

}  // namespace

score_t brute_force_score(std::string_view a, std::string_view b,
                          const Penalties& pen) {
  return search(a, b, 0, 0, Last::kNone, pen);
}

}  // namespace wfasic::core
