#include "core/swg_semiglobal.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::core {
namespace {

score_t sadd(score_t v, score_t delta) {
  return v >= kScoreInf ? kScoreInf : v + delta;
}

}  // namespace

SemiglobalResult align_swg_semiglobal(std::string_view a, std::string_view b,
                                      const Penalties& pen,
                                      Traceback traceback) {
  WFASIC_REQUIRE(pen.valid(), "align_swg_semiglobal: invalid penalties");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t stride = m + 1;
  std::vector<score_t> mm((n + 1) * stride, kScoreInf);
  std::vector<score_t> ii((n + 1) * stride, kScoreInf);
  std::vector<score_t> dd((n + 1) * stride, kScoreInf);
  auto M = [&](std::size_t i, std::size_t j) -> score_t& {
    return mm[i * stride + j];
  };
  auto I = [&](std::size_t i, std::size_t j) -> score_t& {
    return ii[i * stride + j];
  };
  auto D = [&](std::size_t i, std::size_t j) -> score_t& {
    return dd[i * stride + j];
  };

  // Free leading text: the alignment may start at any text position.
  for (std::size_t j = 0; j <= m; ++j) M(0, j) = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    D(i, 0) = pen.open_total() + static_cast<score_t>(i - 1) * pen.gap_extend;
    M(i, 0) = D(i, 0);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      I(i, j) = std::min(sadd(M(i, j - 1), pen.open_total()),
                         sadd(I(i, j - 1), pen.gap_extend));
      D(i, j) = std::min(sadd(M(i - 1, j), pen.open_total()),
                         sadd(D(i - 1, j), pen.gap_extend));
      const score_t diag =
          sadd(M(i - 1, j - 1), a[i - 1] == b[j - 1] ? 0 : pen.mismatch);
      M(i, j) = std::min({diag, I(i, j), D(i, j)});
    }
  }

  // Free trailing text: the best score anywhere on the last row.
  std::size_t best_j = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    if (M(n, j) < M(n, best_j)) best_j = j;
  }

  SemiglobalResult result;
  result.align.ok = true;
  result.align.score = M(n, best_j);
  result.text_end = best_j;
  result.text_begin = best_j;  // refined by the backtrace below

  if (n == 0) {
    result.text_begin = result.text_end = 0;
    return result;
  }

  // Backtrace to find text_begin (always needed) and the CIGAR (optional).
  enum class Mat { kM, kI, kD };
  Mat mat = Mat::kM;
  std::size_t i = n;
  std::size_t j = best_j;
  Cigar cig;
  while (i > 0) {
    switch (mat) {
      case Mat::kM:
        if (M(i, j) == I(i, j)) {
          mat = Mat::kI;
        } else if (M(i, j) == D(i, j)) {
          mat = Mat::kD;
        } else {
          WFASIC_ASSERT(j > 0, "semiglobal backtrace: bad diagonal move");
          const bool match = a[i - 1] == b[j - 1];
          WFASIC_ASSERT(
              M(i, j) == sadd(M(i - 1, j - 1), match ? 0 : pen.mismatch),
              "semiglobal backtrace: M cell has no provenance");
          cig.push(match ? CigarOp::kMatch : CigarOp::kMismatch);
          --i;
          --j;
        }
        break;
      case Mat::kI:
        WFASIC_ASSERT(j > 0, "semiglobal backtrace: insertion at column 0");
        cig.push(CigarOp::kInsertion);
        mat = I(i, j) == sadd(I(i, j - 1), pen.gap_extend) ? Mat::kI : Mat::kM;
        --j;
        break;
      case Mat::kD:
        cig.push(CigarOp::kDeletion);
        mat = D(i, j) == sadd(D(i - 1, j), pen.gap_extend) ? Mat::kD : Mat::kM;
        --i;
        break;
    }
  }
  result.text_begin = j;
  if (traceback == Traceback::kEnabled) {
    cig.reverse();
    result.align.cigar = std::move(cig);
  }
  return result;
}

}  // namespace wfasic::core
