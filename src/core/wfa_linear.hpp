// Gap-linear WaveFront Alignment: the wavefront formulation of Eq. 1
// (§2.2's simpler scoring model, where a gap of length L costs L*g with no
// opening penalty). Only one wavefront matrix is needed — insertions and
// deletions chain through M directly:
//
//   M_{s,k} = max( M_{s-x, k  } + 1     (substitution)
//                , M_{s-g, k-1} + 1     (insertion)
//                , M_{s-g, k+1} )       (deletion)
//
// Exactly equivalent to the gap-linear DP (core/sw_linear.hpp); with
// x = 1, g = 1 it computes Levenshtein edit distance.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "core/align_result.hpp"
#include "core/sw_linear.hpp"

namespace wfasic::core {

struct WfaLinearConfig {
  LinearPenalties pen{4, 2};
  Traceback traceback = Traceback::kEnabled;
  /// Maximum score before giving up (< 0: derive the safe bound).
  score_t max_score = -1;
  /// Force the byte-at-a-time reference extend loop instead of the
  /// word-parallel (64-bit packed-base) kernel. Results are bit-identical
  /// either way (enforced by tests/test_perf_equivalence); the reference
  /// path exists for differential testing. The word kernel only engages
  /// for plain-ACGT inputs — anything else falls back automatically.
  bool reference_extend = false;
};

/// Exact gap-linear pairwise aligner based on wavefronts; O(n*s) time.
class WfaLinearAligner {
 public:
  explicit WfaLinearAligner(WfaLinearConfig cfg = {});

  [[nodiscard]] AlignResult align(std::string_view a, std::string_view b);

  [[nodiscard]] const WfaLinearConfig& config() const { return cfg_; }

  /// Edit-distance convenience: x = 1, g = 1.
  [[nodiscard]] static score_t edit_distance(std::string_view a,
                                             std::string_view b);

 private:
  WfaLinearConfig cfg_;
};

}  // namespace wfasic::core
