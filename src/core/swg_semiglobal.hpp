// Semiglobal (glocal) gap-affine alignment: the whole pattern `a` aligns
// against any substring of the text `b` — leading/trailing text is free.
//
// This is the seed-extension flavour used by read mappers (§2.1): after
// seeding proposes a candidate reference window, the read is aligned
// end-to-end *inside* that window. O(n*m) time.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/types.hpp"
#include "core/align_result.hpp"

namespace wfasic::core {

/// Result of a semiglobal alignment: where in the text the pattern landed.
struct SemiglobalResult {
  AlignResult align;           ///< cigar covers a fully, b[text_begin,text_end)
  std::size_t text_begin = 0;  ///< first text position consumed
  std::size_t text_end = 0;    ///< one past the last text position consumed
};

/// Aligns all of `a` against the best-scoring substring of `b`.
[[nodiscard]] SemiglobalResult align_swg_semiglobal(std::string_view a,
                                                    std::string_view b,
                                                    const Penalties& pen,
                                                    Traceback traceback);

}  // namespace wfasic::core
