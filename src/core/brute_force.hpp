// Exhaustive alignment-enumeration oracle for tiny inputs.
//
// Recursively tries every edit transcript (no dynamic programming, no
// shared code with the DP/WFA implementations) so property tests have an
// independent ground truth. Exponential — keep sequences under ~8 bases.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace wfasic::core {

/// Minimal gap-affine distance between a and b by brute-force enumeration.
[[nodiscard]] score_t brute_force_score(std::string_view a, std::string_view b,
                                        const Penalties& pen);

}  // namespace wfasic::core
