#include "core/wfa_linear.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/dna.hpp"
#include "common/packed_seq.hpp"

namespace wfasic::core {
namespace {

/// One gap-linear wavefront: M offsets only.
struct LinearWavefront {
  diag_t lo;
  diag_t hi;
  std::vector<offset_t> m;

  LinearWavefront(diag_t l, diag_t h)
      : lo(l), hi(h), m(static_cast<std::size_t>(h - l + 1), kOffsetNull) {}

  [[nodiscard]] offset_t get(diag_t k) const {
    if (k < lo || k > hi) return kOffsetNull;
    return m[static_cast<std::size_t>(k - lo)];
  }
  void set(diag_t k, offset_t v) {
    WFASIC_ASSERT(k >= lo && k <= hi, "LinearWavefront write out of range");
    m[static_cast<std::size_t>(k - lo)] = v;
  }
};

struct Candidates {
  offset_t sub;
  offset_t ins;
  offset_t del;
  offset_t best;
};

[[nodiscard]] offset_t trim(offset_t offset, diag_t k, offset_t n,
                            offset_t m_len) {
  const offset_t i = offset - k;
  const bool valid = offset != kOffsetNull && offset >= 0 &&
                     offset <= m_len && i >= 0 && i <= n;
  return valid ? offset : kOffsetNull;
}

}  // namespace

WfaLinearAligner::WfaLinearAligner(WfaLinearConfig cfg) : cfg_(cfg) {
  WFASIC_REQUIRE(cfg_.pen.mismatch > 0 && cfg_.pen.gap > 0,
                 "WfaLinearAligner: penalties must be positive");
}

score_t WfaLinearAligner::edit_distance(std::string_view a,
                                        std::string_view b) {
  WfaLinearConfig cfg;
  cfg.pen = LinearPenalties{1, 1};
  cfg.traceback = Traceback::kDisabled;
  WfaLinearAligner aligner(cfg);
  const AlignResult r = aligner.align(a, b);
  WFASIC_ASSERT(r.ok, "edit_distance: unbounded alignment failed");
  return r.score;
}

AlignResult WfaLinearAligner::align(std::string_view a, std::string_view b) {
  const auto n = static_cast<offset_t>(a.size());
  const auto m_len = static_cast<offset_t>(b.size());
  const diag_t k_align = m_len - n;
  const score_t x = cfg_.pen.mismatch;
  const score_t g = cfg_.pen.gap;
  const score_t cap =
      cfg_.max_score >= 0
          ? cfg_.max_score
          : static_cast<score_t>(a.size() + b.size()) * g + x;

  std::vector<std::unique_ptr<LinearWavefront>> wfs;
  const auto wavefront = [&](score_t s) -> LinearWavefront* {
    if (s < 0 || s >= static_cast<score_t>(wfs.size())) return nullptr;
    return wfs[static_cast<std::size_t>(s)].get();
  };
  const auto candidates = [&](score_t s, diag_t k) {
    Candidates c{kOffsetNull, kOffsetNull, kOffsetNull, kOffsetNull};
    if (const LinearWavefront* wx = wavefront(s - x)) {
      c.sub = trim(wx->get(k) == kOffsetNull ? kOffsetNull : wx->get(k) + 1,
                   k, n, m_len);
    }
    if (const LinearWavefront* wg = wavefront(s - g)) {
      const offset_t ins_src = wg->get(k - 1);
      c.ins = trim(ins_src == kOffsetNull ? kOffsetNull : ins_src + 1, k, n,
                   m_len);
      c.del = trim(wg->get(k + 1), k, n, m_len);
    }
    c.best = std::max({c.sub, c.ins, c.del});
    return c;
  };
  // Word-parallel extend: 2-bit packed bases compared 32 at a time via a
  // 64-bit XOR + count-trailing-zeros. Same match runs as the byte loop
  // (differentially tested); restricted to plain-ACGT inputs since packing
  // is lossy for anything else.
  const bool word_extend = !cfg_.reference_extend && is_valid_sequence(a) &&
                           is_valid_sequence(b);
  PackedSeq pa;
  PackedSeq pb;
  if (word_extend) {
    pa = PackedSeq(a);
    pb = PackedSeq(b);
  }
  const auto extend = [&](LinearWavefront& w) {
    for (diag_t k = w.lo; k <= w.hi; ++k) {
      offset_t off = w.get(k);
      if (off == kOffsetNull) continue;
      std::size_t i = static_cast<std::size_t>(off - k);
      std::size_t j = static_cast<std::size_t>(off);
      if (word_extend) {
        off += static_cast<offset_t>(pa.match_run64(i, pb, j));
      } else {
        while (i < a.size() && j < b.size() && a[i] == b[j]) {
          ++i;
          ++j;
          ++off;
        }
      }
      w.set(k, off);
    }
  };

  AlignResult result;
  wfs.push_back(std::make_unique<LinearWavefront>(0, 0));
  wfs[0]->set(0, 0);
  score_t s = 0;
  while (true) {
    LinearWavefront* current = wavefront(s);
    if (current != nullptr) {
      extend(*current);
      if (current->get(k_align) == m_len) {
        result.ok = true;
        result.score = s;
        break;
      }
    }
    if (s >= cap) return result;  // ok = false
    ++s;
    // compute(s) from s-x and s-g.
    LinearWavefront* wx = wavefront(s - x);
    LinearWavefront* wg = wavefront(s - g);
    if (wx == nullptr && wg == nullptr) {
      wfs.push_back(nullptr);
      continue;
    }
    diag_t lo = kScoreInf;
    diag_t hi = -kScoreInf;
    if (wx != nullptr) {
      lo = std::min(lo, wx->lo);
      hi = std::max(hi, wx->hi);
    }
    if (wg != nullptr) {
      lo = std::min(lo, wg->lo - 1);
      hi = std::max(hi, wg->hi + 1);
    }
    lo = std::max(lo, -n);
    hi = std::min(hi, m_len);
    if (lo > hi) {
      wfs.push_back(nullptr);
      continue;
    }
    auto next = std::make_unique<LinearWavefront>(lo, hi);
    for (diag_t k = lo; k <= hi; ++k) {
      next->set(k, candidates(s, k).best);
    }
    wfs.push_back(std::move(next));
  }

  if (cfg_.traceback == Traceback::kDisabled) return result;

  // Backtrace by recomputing provenance, mirroring the affine version but
  // over a single matrix. Tie-breaks: substitution, insertion, deletion.
  Cigar& cig = result.cigar;
  score_t bs = result.score;
  diag_t k = k_align;
  offset_t cur = m_len;
  while (bs > 0) {
    const Candidates c = candidates(bs, k);
    WFASIC_ASSERT(c.best != kOffsetNull && c.best <= cur,
                  "wfa_linear backtrace: cell has no provenance");
    cig.push(CigarOp::kMatch, static_cast<std::uint32_t>(cur - c.best));
    cur = c.best;
    if (cur == c.sub) {
      cig.push(CigarOp::kMismatch);
      bs -= x;
      cur -= 1;
    } else if (cur == c.ins) {
      cig.push(CigarOp::kInsertion);
      bs -= g;
      k -= 1;
      cur -= 1;
    } else {
      cig.push(CigarOp::kDeletion);
      bs -= g;
      k += 1;
    }
  }
  WFASIC_ASSERT(k == 0 && cur >= 0, "wfa_linear backtrace: bad terminal");
  cig.push(CigarOp::kMatch, static_cast<std::uint32_t>(cur));
  cig.reverse();
  return result;
}

}  // namespace wfasic::core
