// The single-cell WFA compute kernel (Eq. 3) shared by the software aligner
// (core/wfa.hpp) and the hardware Compute sub-module model (hw/compute_unit).
//
// Sharing one kernel guarantees that the accelerator model and the software
// reference pick identical values AND identical provenance (origins), so the
// hardware backtrace stream decodes to exactly the software CIGAR.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace wfasic::core {

/// Provenance of an M wavefront cell. 3 bits in hardware (§4.3.3): M can
/// come from 5 positions because taking I/D also records whether that gap
/// was opening or extending.
enum class MOrigin : std::uint8_t {
  kSub = 0,      ///< M_{s-x}[k] + 1   (mismatch)
  kInsOpen = 1,  ///< I_s[k] where I opened from M_{s-o-e}[k-1]
  kInsExt = 2,   ///< I_s[k] where I extended I_{s-e}[k-1]
  kDelOpen = 3,  ///< D_s[k] where D opened from M_{s-o-e}[k+1]
  kDelExt = 4,   ///< D_s[k] where D extended D_{s-e}[k+1]
};

/// The five source offsets a frame-column cell depends on (Figure 2).
/// Absent sources are kOffsetNull.
struct WfCellSources {
  offset_t m_sub = kOffsetNull;       ///< M_{s-x}[k]
  offset_t m_open_ins = kOffsetNull;  ///< M_{s-o-e}[k-1]
  offset_t i_ext = kOffsetNull;       ///< I_{s-e}[k-1]
  offset_t m_open_del = kOffsetNull;  ///< M_{s-o-e}[k+1]
  offset_t d_ext = kOffsetNull;       ///< D_{s-e}[k+1]
};

/// One computed frame-column cell: the three offsets plus the 5 origin bits
/// the hardware streams out for the CPU backtrace (1 bit I, 1 bit D,
/// 3 bits M — §4.3.3).
struct WfCell {
  offset_t m = kOffsetNull;
  offset_t i = kOffsetNull;
  offset_t d = kOffsetNull;
  MOrigin m_origin = MOrigin::kSub;  ///< valid iff m != kOffsetNull
  bool i_from_ext = false;           ///< valid iff i != kOffsetNull
  bool d_from_ext = false;           ///< valid iff d != kOffsetNull
};

/// True when an offset denotes a real DP cell for diagonal k of an
/// (n x text_len) problem: 0 <= j <= text_len and 0 <= i <= n with
/// j = offset, i = offset - k (Eq. 4).
[[nodiscard]] constexpr bool offset_in_matrix(offset_t offset, diag_t k,
                                              offset_t pattern_len,
                                              offset_t text_len) {
  if (offset == kOffsetNull) return false;
  const offset_t i = offset - k;
  return offset >= 0 && offset <= text_len && i >= 0 && i <= pattern_len;
}

/// Computes one cell of the new wavefront (Eq. 3) with boundary trimming:
/// offsets that fall outside the DP matrix are nulled so they can never win
/// a later max. Tie-breaks are fixed (open before extend; sub before ins
/// before del) and shared with the hardware model.
[[nodiscard]] constexpr WfCell compute_wf_cell(const WfCellSources& src,
                                               diag_t k, offset_t pattern_len,
                                               offset_t text_len) {
  WfCell out;
  // Every candidate is trimmed against the matrix bounds *before* the max,
  // so an out-of-matrix path can never shadow a valid lower one.
  const auto trimmed = [=](offset_t offset) {
    return offset_in_matrix(offset, k, pattern_len, text_len) ? offset
                                                              : kOffsetNull;
  };

  // I_s[k] = max(M_{s-o-e}[k-1], I_{s-e}[k-1]) + 1. kOffsetNull is far from
  // the valid range, so adding 1 keeps it losing every comparison.
  const offset_t i_open = trimmed(src.m_open_ins + 1);
  const offset_t i_extend = trimmed(src.i_ext + 1);
  if (i_open >= i_extend) {  // open preferred on ties
    out.i = i_open;
    out.i_from_ext = false;
  } else {
    out.i = i_extend;
    out.i_from_ext = true;
  }

  // D_s[k] = max(M_{s-o-e}[k+1], D_{s-e}[k+1]) — offset unchanged, one more
  // pattern base consumed via the diagonal shift.
  const offset_t d_open = trimmed(src.m_open_del);
  const offset_t d_extend = trimmed(src.d_ext);
  if (d_open >= d_extend) {
    out.d = d_open;
    out.d_from_ext = false;
  } else {
    out.d = d_extend;
    out.d_from_ext = true;
  }

  // M_s[k] = max(M_{s-x}[k] + 1, I_s[k], D_s[k]); sub preferred, then
  // insertion, then deletion on ties.
  const offset_t m_sub = trimmed(src.m_sub + 1);
  out.m = m_sub;
  out.m_origin = MOrigin::kSub;
  if (out.i != kOffsetNull && out.i > out.m) {
    out.m = out.i;
    out.m_origin = out.i_from_ext ? MOrigin::kInsExt : MOrigin::kInsOpen;
  }
  if (out.d != kOffsetNull && out.d > out.m) {
    out.m = out.d;
    out.m_origin = out.d_from_ext ? MOrigin::kDelExt : MOrigin::kDelOpen;
  }
  return out;
}

/// Packs the three origin fields into the 5-bit code the Compute sub-module
/// emits per cell (bit layout: [4:2] M origin, [1] I ext, [0] D ext).
[[nodiscard]] constexpr std::uint8_t pack_origin_bits(const WfCell& cell) {
  return static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(cell.m_origin) << 2) |
      (static_cast<std::uint8_t>(cell.i_from_ext) << 1) |
      static_cast<std::uint8_t>(cell.d_from_ext));
}

/// Inverse of pack_origin_bits (used by the CPU backtrace decode).
struct OriginBits {
  MOrigin m_origin;
  bool i_from_ext;
  bool d_from_ext;
};
[[nodiscard]] constexpr OriginBits unpack_origin_bits(std::uint8_t bits) {
  return OriginBits{static_cast<MOrigin>((bits >> 2) & 7),
                    ((bits >> 1) & 1) != 0, (bits & 1) != 0};
}

}  // namespace wfasic::core
