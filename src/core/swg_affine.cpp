#include "core/swg_affine.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::core {
namespace {

/// Saturating add that keeps "unreachable" unreachable.
score_t sadd(score_t v, score_t delta) {
  return v >= kScoreInf ? kScoreInf : v + delta;
}

}  // namespace

AlignResult align_swg(std::string_view a, std::string_view b,
                      const Penalties& pen, Traceback traceback) {
  WFASIC_REQUIRE(pen.valid(), "align_swg: invalid penalties");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t stride = m + 1;
  std::vector<score_t> mm((n + 1) * stride, kScoreInf);
  std::vector<score_t> ii((n + 1) * stride, kScoreInf);
  std::vector<score_t> dd((n + 1) * stride, kScoreInf);
  auto M = [&](std::size_t i, std::size_t j) -> score_t& {
    return mm[i * stride + j];
  };
  auto I = [&](std::size_t i, std::size_t j) -> score_t& {
    return ii[i * stride + j];
  };
  auto D = [&](std::size_t i, std::size_t j) -> score_t& {
    return dd[i * stride + j];
  };

  M(0, 0) = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    I(0, j) = pen.open_total() + static_cast<score_t>(j - 1) * pen.gap_extend;
    M(0, j) = I(0, j);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    D(i, 0) = pen.open_total() + static_cast<score_t>(i - 1) * pen.gap_extend;
    M(i, 0) = D(i, 0);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      I(i, j) = std::min(sadd(M(i, j - 1), pen.open_total()),
                         sadd(I(i, j - 1), pen.gap_extend));
      D(i, j) = std::min(sadd(M(i - 1, j), pen.open_total()),
                         sadd(D(i - 1, j), pen.gap_extend));
      const score_t diag =
          sadd(M(i - 1, j - 1), a[i - 1] == b[j - 1] ? 0 : pen.mismatch);
      M(i, j) = std::min({diag, I(i, j), D(i, j)});
    }
  }

  AlignResult result;
  result.ok = true;
  result.score = M(n, m);
  if (traceback == Traceback::kDisabled) return result;

  // Backtrace over the three matrices by recomputing provenance.
  enum class Mat { kM, kI, kD };
  Mat mat = Mat::kM;
  std::size_t i = n;
  std::size_t j = m;
  Cigar& cig = result.cigar;
  while (i > 0 || j > 0) {
    switch (mat) {
      case Mat::kM: {
        if (M(i, j) == I(i, j)) {
          mat = Mat::kI;
        } else if (M(i, j) == D(i, j)) {
          mat = Mat::kD;
        } else {
          WFASIC_ASSERT(i > 0 && j > 0, "swg backtrace: bad diagonal move");
          const bool match = a[i - 1] == b[j - 1];
          WFASIC_ASSERT(
              M(i, j) == sadd(M(i - 1, j - 1), match ? 0 : pen.mismatch),
              "swg backtrace: M cell has no provenance");
          cig.push(match ? CigarOp::kMatch : CigarOp::kMismatch);
          --i;
          --j;
        }
        break;
      }
      case Mat::kI: {
        WFASIC_ASSERT(j > 0, "swg backtrace: insertion at column 0");
        cig.push(CigarOp::kInsertion);
        // Prefer gap extension while it explains the value; fall back to
        // the opening move from M. I(i,0) is unreachable, so sadd keeps the
        // extension branch false at the column boundary.
        if (I(i, j) == sadd(I(i, j - 1), pen.gap_extend)) {
          mat = Mat::kI;
        } else {
          WFASIC_ASSERT(I(i, j) == sadd(M(i, j - 1), pen.open_total()),
                        "swg backtrace: I cell has no provenance");
          mat = Mat::kM;
        }
        --j;
        break;
      }
      case Mat::kD: {
        WFASIC_ASSERT(i > 0, "swg backtrace: deletion at row 0");
        cig.push(CigarOp::kDeletion);
        if (D(i, j) == sadd(D(i - 1, j), pen.gap_extend)) {
          mat = Mat::kD;
        } else {
          WFASIC_ASSERT(D(i, j) == sadd(M(i - 1, j), pen.open_total()),
                        "swg backtrace: D cell has no provenance");
          mat = Mat::kM;
        }
        --i;
        break;
      }
    }
  }
  cig.reverse();
  return result;
}

score_t swg_score(std::string_view a, std::string_view b,
                  const Penalties& pen) {
  WFASIC_REQUIRE(pen.valid(), "swg_score: invalid penalties");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<score_t> m_prev(m + 1), i_prev(m + 1), d_prev(m + 1);
  std::vector<score_t> m_cur(m + 1), i_cur(m + 1), d_cur(m + 1);
  m_prev[0] = 0;
  i_prev[0] = d_prev[0] = kScoreInf;
  for (std::size_t j = 1; j <= m; ++j) {
    i_prev[j] = pen.open_total() + static_cast<score_t>(j - 1) * pen.gap_extend;
    m_prev[j] = i_prev[j];
    d_prev[j] = kScoreInf;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    d_cur[0] = pen.open_total() + static_cast<score_t>(i - 1) * pen.gap_extend;
    m_cur[0] = d_cur[0];
    i_cur[0] = kScoreInf;
    for (std::size_t j = 1; j <= m; ++j) {
      i_cur[j] = std::min(sadd(m_cur[j - 1], pen.open_total()),
                          sadd(i_cur[j - 1], pen.gap_extend));
      d_cur[j] = std::min(sadd(m_prev[j], pen.open_total()),
                          sadd(d_prev[j], pen.gap_extend));
      const score_t diag =
          sadd(m_prev[j - 1], a[i - 1] == b[j - 1] ? 0 : pen.mismatch);
      m_cur[j] = std::min({diag, i_cur[j], d_cur[j]});
    }
    std::swap(m_prev, m_cur);
    std::swap(i_prev, i_cur);
    std::swap(d_prev, d_cur);
  }
  return m_prev[m];
}

}  // namespace wfasic::core
