// Gap-linear dynamic-programming alignment (Eq. 1 of the paper).
//
// Global (end-to-end) alignment in distance form: matches cost 0, a
// mismatch costs x and every gap base costs g. This is the paper's
// background baseline; the gap-affine SWG in swg_affine.hpp is the one WFA
// must match exactly.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "core/align_result.hpp"

namespace wfasic::core {

struct LinearPenalties {
  score_t mismatch = 4;
  score_t gap = 2;
};

/// Aligns pattern `a` against text `b` with the gap-linear model.
/// O(n*m) time and memory.
[[nodiscard]] AlignResult align_sw_linear(std::string_view a,
                                          std::string_view b,
                                          const LinearPenalties& pen,
                                          Traceback traceback);

}  // namespace wfasic::core
