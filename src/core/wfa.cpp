#include "core/wfa.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/dna.hpp"

namespace wfasic::core {
namespace {

// Synthetic address map for the instrumentation trace: the pattern, text
// and wavefront pool live in disjoint regions, mirroring the layout of the
// paper's CPU implementation (sequences + heap-allocated wavefronts).
constexpr std::uint64_t kTraceSeqABase = 0x0000'0000ULL;
constexpr std::uint64_t kTraceSeqBBase = 0x0400'0000ULL;
constexpr std::uint64_t kTraceWfBase = 0x1000'0000ULL;

}  // namespace

score_t WfaAligner::worst_case_score(std::size_t a_len, std::size_t b_len,
                                     const Penalties& pen) {
  score_t bound = 0;
  if (a_len > 0)
    bound += pen.open_total() +
             static_cast<score_t>(a_len - 1) * pen.gap_extend;
  if (b_len > 0)
    bound += pen.open_total() +
             static_cast<score_t>(b_len - 1) * pen.gap_extend;
  return bound;
}

/// All per-alignment state; one instance per align() call.
struct WfaAligner::Run {
  const WfaConfig& cfg;
  WfaProbe& probe;
  WavefrontArena& arena;
  std::string_view a;
  std::string_view b;
  offset_t n;       // |a|, pattern length
  offset_t m_len;   // |b|, text length
  diag_t k_align;   // m_len - n: the diagonal the alignment ends on
  score_t score_cap;
  bool keep_all;    // store every wavefront (traceback) vs ring buffer
  bool tracing;     // probe.mem_trace attached (hoisted out of hot loops)
  bool word_extend; // 64-bit XOR+ctz extend kernel usable for this pair

  PackedSeq pa, pb;  // blocked-extend or word-parallel mode

  struct Slot {
    score_t score = -1;
    std::unique_ptr<Wavefront> wf;
  };
  std::vector<Slot> ring;       // score-only mode
  std::vector<std::unique_ptr<Wavefront>> all;  // traceback mode
  score_t window;               // ring depth: max(x, o+e) + 1

  std::uint64_t bump_addr = kTraceWfBase;
  std::uint64_t live_bytes = 0;

  Run(const WfaConfig& config, WfaProbe& prb, WavefrontArena& pool,
      std::string_view sa, std::string_view sb)
      : cfg(config),
        probe(prb),
        arena(pool),
        a(sa),
        b(sb),
        n(static_cast<offset_t>(sa.size())),
        m_len(static_cast<offset_t>(sb.size())),
        k_align(static_cast<diag_t>(sb.size()) -
                static_cast<diag_t>(sa.size())),
        score_cap(config.max_score >= 0
                      ? config.max_score
                      : worst_case_score(sa.size(), sb.size(), config.pen)),
        keep_all(config.traceback == Traceback::kEnabled),
        tracing(static_cast<bool>(prb.mem_trace)),
        word_extend(false),
        window(std::max(config.pen.mismatch, config.pen.open_total()) + 1) {
    // The word-parallel kernel needs packable (A/C/G/T) sequences and no
    // memory trace (a trace must replay the reference kernel's exact
    // access pattern). Blocked mode packs unconditionally — it always
    // required valid bases.
    const bool packable = cfg.extend == ExtendMode::kBlocked ||
                          (is_valid_sequence(a) && is_valid_sequence(b));
    word_extend = !cfg.reference_extend && !tracing && packable;
    if (cfg.extend == ExtendMode::kBlocked || word_extend) {
      pa = PackedSeq(a);
      pb = PackedSeq(b);
    }
    if (!keep_all) ring.resize(static_cast<std::size_t>(window));
  }

  ~Run() {
    for (Slot& slot : ring) arena.release(std::move(slot.wf));
    for (auto& wavefront : all) arena.release(std::move(wavefront));
  }

  void trace(std::uint64_t addr, std::uint32_t size, bool is_write) {
    if (tracing) probe.mem_trace(addr, size, is_write);
  }

  /// Wavefront for score s, or nullptr if absent / already recycled.
  [[nodiscard]] Wavefront* wf(score_t s) {
    if (s < 0) return nullptr;
    if (keep_all) {
      const auto idx = static_cast<std::size_t>(s);
      return idx < all.size() ? all[idx].get() : nullptr;
    }
    Slot& slot = ring[static_cast<std::size_t>(s % window)];
    return slot.score == s ? slot.wf.get() : nullptr;
  }

  Wavefront& make_wf(score_t s, diag_t lo, diag_t hi) {
    std::unique_ptr<Wavefront> wavefront = arena.acquire(lo, hi);
    wavefront->trace_base = bump_addr;
    bump_addr += wavefront->payload_bytes();
    probe.wf_bytes_allocated += wavefront->payload_bytes();
    live_bytes += wavefront->payload_bytes();
    Wavefront* raw = wavefront.get();
    if (keep_all) {
      all.resize(std::max<std::size_t>(all.size(),
                                       static_cast<std::size_t>(s) + 1));
      all[static_cast<std::size_t>(s)] = std::move(wavefront);
    } else {
      Slot& slot = ring[static_cast<std::size_t>(s % window)];
      if (slot.wf) {
        live_bytes -= slot.wf->payload_bytes();
        arena.release(std::move(slot.wf));
      }
      slot.score = s;
      slot.wf = std::move(wavefront);
    }
    probe.peak_live_wf_bytes = std::max(probe.peak_live_wf_bytes, live_bytes);
    return *raw;
  }

  /// extend(): advance every valid M offset along its diagonal while the
  /// sequences match (§2.3). The match run is found by the word-parallel
  /// kernel when eligible; the probe counters always follow the selected
  /// ExtendMode's cost model, so the kernel choice is invisible to both
  /// results and instrumentation.
  void extend(Wavefront& w) {
    for (diag_t k = w.lo(); k <= w.hi(); ++k) {
      const offset_t off = w.m(k);
      if (off == kOffsetNull) continue;
      ++probe.extend_cells;
      const offset_t i0 = off - k;
      std::size_t run = 0;
      if (word_extend) {
        run = pa.match_run64(static_cast<std::size_t>(i0), pb,
                             static_cast<std::size_t>(off));
        if (cfg.extend == ExtendMode::kScalar) {
          probe.chars_compared += run + 1;
        } else {
          probe.blocks_compared += run / PackedSeq::kBasesPerWord + 1;
        }
      } else if (cfg.extend == ExtendMode::kScalar) {
        std::size_t i = static_cast<std::size_t>(i0);
        std::size_t j = static_cast<std::size_t>(off);
        if (tracing) {
          while (i < a.size() && j < b.size() && a[i] == b[j]) {
            probe.mem_trace(kTraceSeqABase + i, 1, false);
            probe.mem_trace(kTraceSeqBBase + j, 1, false);
            ++run;
            ++i;
            ++j;
          }
        } else {
          while (i < a.size() && j < b.size() && a[i] == b[j]) {
            ++run;
            ++i;
            ++j;
          }
        }
        probe.chars_compared += run + 1;
      } else {
        run = pa.match_run(static_cast<std::size_t>(i0), pb,
                           static_cast<std::size_t>(off));
        const std::size_t blocks = run / PackedSeq::kBasesPerWord + 1;
        probe.blocks_compared += blocks;
        if (tracing) {
          // One 4-byte word load per sequence per block.
          for (std::size_t blk = 0; blk < blocks; ++blk) {
            trace(kTraceSeqABase + (static_cast<std::size_t>(i0) / 16 + blk) * 4,
                  4, false);
            trace(kTraceSeqBBase + (static_cast<std::size_t>(off) / 16 + blk) * 4,
                  4, false);
          }
        }
      }
      if (run > 0) {
        w.set_m(k, off + static_cast<offset_t>(run));
        trace(w.trace_addr_m(k), sizeof(offset_t), true);
      }
    }
  }

  /// Adaptive reduction (WfaHeuristic): shrink the wavefront from both
  /// edges, dropping diagonals whose distance-to-target is hopelessly
  /// behind the best one. Runs after extend, before the next compute.
  void reduce(Wavefront& w) {
    const WfaHeuristic& h = cfg.heuristic;
    if (!h.enabled || w.width() <= h.min_wavefront_length) return;
    const auto distance = [&](diag_t k) -> offset_t {
      const offset_t off = w.m(k);
      if (off == kOffsetNull) return kScoreInf;
      const offset_t left_v = n - (off - k);
      const offset_t left_h = m_len - off;
      return std::max(left_v, left_h);
    };
    offset_t best = kScoreInf;
    for (diag_t k = w.lo(); k <= w.hi(); ++k) {
      best = std::min(best, distance(k));
    }
    if (best >= kScoreInf) return;  // all-null wavefront: nothing to judge
    diag_t lo = w.lo();
    diag_t hi = w.hi();
    while (lo < hi && distance(lo) > best + h.max_distance_threshold) ++lo;
    while (hi > lo && distance(hi) > best + h.max_distance_threshold) --hi;
    // Never reduce past the floor.
    if (static_cast<std::size_t>(hi - lo + 1) < h.min_wavefront_length) return;
    w.trim(lo, hi);
  }

  /// Gathers the five Eq.-3 source offsets for diagonal k of score s.
  /// Templated on whether a memory trace is attached so probe-less runs
  /// pay zero per-access overhead (the compile-time branch folds away).
  template <bool kTraced>
  [[nodiscard]] WfCellSources gather_sources_impl(score_t s, diag_t k) {
    WfCellSources src;
    if (Wavefront* wx = wf(s - cfg.pen.mismatch)) {
      src.m_sub = wx->m(k);
      if constexpr (kTraced) {
        trace(wx->trace_addr_m(std::clamp(k, wx->lo(), wx->hi())),
              sizeof(offset_t), false);
      }
    }
    if (Wavefront* woe = wf(s - cfg.pen.open_total())) {
      src.m_open_ins = woe->m(k - 1);
      src.m_open_del = woe->m(k + 1);
      if constexpr (kTraced) {
        trace(woe->trace_addr_m(std::clamp(k - 1, woe->lo(), woe->hi())),
              sizeof(offset_t), false);
        trace(woe->trace_addr_m(std::clamp(k + 1, woe->lo(), woe->hi())),
              sizeof(offset_t), false);
      }
    }
    if (Wavefront* we = wf(s - cfg.pen.gap_extend)) {
      src.i_ext = we->i(k - 1);
      src.d_ext = we->d(k + 1);
      if constexpr (kTraced) {
        trace(we->trace_addr_i(std::clamp(k - 1, we->lo(), we->hi())),
              sizeof(offset_t), false);
        trace(we->trace_addr_d(std::clamp(k + 1, we->lo(), we->hi())),
              sizeof(offset_t), false);
      }
    }
    probe.wf_cells_read += 5;
    return src;
  }

  [[nodiscard]] WfCellSources gather_sources(score_t s, diag_t k) {
    return tracing ? gather_sources_impl<true>(s, k)
                   : gather_sources_impl<false>(s, k);
  }

  /// compute(): builds the wavefront of score s from s-x, s-o-e, s-e.
  /// Returns the new wavefront or nullptr when no source exists.
  Wavefront* compute(score_t s) {
    Wavefront* wx = wf(s - cfg.pen.mismatch);
    Wavefront* woe = wf(s - cfg.pen.open_total());
    Wavefront* we = wf(s - cfg.pen.gap_extend);
    if (wx == nullptr && woe == nullptr && we == nullptr) return nullptr;

    diag_t lo = kScoreInf;
    diag_t hi = -kScoreInf;
    if (wx != nullptr) {
      lo = std::min(lo, wx->lo());
      hi = std::max(hi, wx->hi());
    }
    if (woe != nullptr) {
      lo = std::min(lo, woe->lo() - 1);
      hi = std::max(hi, woe->hi() + 1);
    }
    if (we != nullptr) {
      lo = std::min(lo, we->lo() - 1);
      hi = std::max(hi, we->hi() + 1);
    }
    // Never wider than the DP matrix itself, and never past the band.
    lo = std::max(lo, -n);
    hi = std::min(hi, m_len);
    if (cfg.k_max >= 0) {
      lo = std::max(lo, -cfg.k_max);
      hi = std::min(hi, cfg.k_max);
    }
    if (lo > hi) return nullptr;

    Wavefront& out = make_wf(s, lo, hi);
    if (tracing) {
      compute_cells<true>(out, s, lo, hi);
    } else {
      compute_cells<false>(out, s, lo, hi);
    }
    ++probe.wavefronts_computed;
    return &out;
  }

  /// The per-cell compute loop, dispatched once per wavefront on the
  /// tracing flag.
  template <bool kTraced>
  void compute_cells(Wavefront& out, score_t s, diag_t lo, diag_t hi) {
    for (diag_t k = lo; k <= hi; ++k) {
      const WfCell cell =
          compute_wf_cell(gather_sources_impl<kTraced>(s, k), k, n, m_len);
      out.set_m(k, cell.m);
      out.set_i(k, cell.i);
      out.set_d(k, cell.d);
      ++probe.cells_computed;
      probe.wf_cells_written += 3;
      if constexpr (kTraced) {
        trace(out.trace_addr_m(k), sizeof(offset_t), true);
        trace(out.trace_addr_i(k), sizeof(offset_t), true);
        trace(out.trace_addr_d(k), sizeof(offset_t), true);
      }
    }
  }

  /// Recomputes the kernel result for a stored cell (backtrace provenance).
  [[nodiscard]] WfCell recompute_cell(score_t s, diag_t k) {
    return compute_wf_cell(gather_sources(s, k), k, n, m_len);
  }

  /// Walks the stored wavefronts back from the final cell, emitting the
  /// CIGAR. Only valid in keep_all mode.
  [[nodiscard]] Cigar backtrace(score_t s_final) {
    enum class Mat { kM, kI, kD };
    Cigar cig;
    Mat mat = Mat::kM;
    score_t s = s_final;
    diag_t k = k_align;
    offset_t cur = m_len;
    while (true) {
      ++probe.bt_steps;
      switch (mat) {
        case Mat::kM: {
          if (s == 0) {
            WFASIC_ASSERT(k == 0 && cur >= 0,
                          "wfa backtrace: bad terminal state");
            cig.push(CigarOp::kMatch, static_cast<std::uint32_t>(cur));
            cig.reverse();
            return cig;
          }
          const WfCell cell = recompute_cell(s, k);
          WFASIC_ASSERT(cell.m != kOffsetNull && cell.m <= cur,
                        "wfa backtrace: M cell has no provenance");
          cig.push(CigarOp::kMatch, static_cast<std::uint32_t>(cur - cell.m));
          cur = cell.m;
          switch (cell.m_origin) {
            case MOrigin::kSub:
              cig.push(CigarOp::kMismatch);
              s -= cfg.pen.mismatch;
              cur -= 1;
              break;
            case MOrigin::kInsOpen:
              cig.push(CigarOp::kInsertion);
              s -= cfg.pen.open_total();
              k -= 1;
              cur -= 1;
              break;
            case MOrigin::kInsExt:
              cig.push(CigarOp::kInsertion);
              s -= cfg.pen.gap_extend;
              k -= 1;
              cur -= 1;
              mat = Mat::kI;
              break;
            case MOrigin::kDelOpen:
              cig.push(CigarOp::kDeletion);
              s -= cfg.pen.open_total();
              k += 1;
              break;
            case MOrigin::kDelExt:
              cig.push(CigarOp::kDeletion);
              s -= cfg.pen.gap_extend;
              k += 1;
              mat = Mat::kD;
              break;
          }
          break;
        }
        case Mat::kI: {
          const WfCell cell = recompute_cell(s, k);
          WFASIC_ASSERT(cell.i == cur, "wfa backtrace: I cell mismatch");
          cig.push(CigarOp::kInsertion);
          k -= 1;
          cur -= 1;
          if (cell.i_from_ext) {
            s -= cfg.pen.gap_extend;
          } else {
            s -= cfg.pen.open_total();
            mat = Mat::kM;
          }
          break;
        }
        case Mat::kD: {
          const WfCell cell = recompute_cell(s, k);
          WFASIC_ASSERT(cell.d == cur, "wfa backtrace: D cell mismatch");
          cig.push(CigarOp::kDeletion);
          k += 1;
          if (cell.d_from_ext) {
            s -= cfg.pen.gap_extend;
          } else {
            s -= cfg.pen.open_total();
            mat = Mat::kM;
          }
          break;
        }
      }
    }
  }
};

WfaAligner::WfaAligner(WfaConfig cfg) : cfg_(cfg) {
  WFASIC_REQUIRE(cfg_.pen.valid(), "WfaAligner: invalid penalties");
}

void WfaAligner::reconfigure(const WfaConfig& cfg) {
  WFASIC_REQUIRE(cfg.pen.valid(), "WfaAligner: invalid penalties");
  cfg_ = cfg;
}

AlignResult WfaAligner::align(std::string_view a, std::string_view b) {
  Run run(cfg_, probe_, arena_, a, b);
  AlignResult result;

  // A band that cannot even contain the final diagonal can never succeed.
  if (cfg_.k_max >= 0 &&
      (run.k_align > cfg_.k_max || run.k_align < -cfg_.k_max)) {
    return result;  // ok = false
  }

  // Score 0: the single seed cell M_{0,0} = 0.
  Wavefront& wf0 = run.make_wf(0, 0, 0);
  wf0.set_m(0, 0);

  score_t s = 0;
  Wavefront* current = &wf0;
  while (true) {
    ++probe_.score_iterations;
    if (current != nullptr) {
      run.extend(*current);
      if (current->m(run.k_align) == run.m_len) {
        result.ok = true;
        result.score = s;
        break;
      }
      run.reduce(*current);
    }
    if (s >= run.score_cap) return result;  // ok = false: cap exceeded
    ++s;
    current = run.compute(s);
  }

  if (cfg_.traceback == Traceback::kEnabled) {
    result.cigar = run.backtrace(result.score);
  }
  return result;
}

}  // namespace wfasic::core
