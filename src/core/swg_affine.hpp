// Gap-affine dynamic-programming alignment: Smith-Waterman-Gotoh (Eq. 2).
//
// Global alignment in distance form over three matrices M/I/D. This is the
// exact ground truth: the WFA (core/wfa.hpp) and the accelerator model must
// produce identical scores, and their CIGARs must score identically.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "core/align_result.hpp"

namespace wfasic::core {

/// Aligns pattern `a` against text `b` with the gap-affine model.
/// O(n*m) time and memory (three DP matrices).
[[nodiscard]] AlignResult align_swg(std::string_view a, std::string_view b,
                                    const Penalties& pen, Traceback traceback);

/// Score-only variant using two rolling rows — O(n*m) time, O(m) memory.
/// Used by big property sweeps where full matrices would be wasteful.
[[nodiscard]] score_t swg_score(std::string_view a, std::string_view b,
                                const Penalties& pen);

}  // namespace wfasic::core
