// Wavefront storage for the software WFA aligner: one M/I/D offset triple
// per diagonal for one score.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace wfasic::core {

/// One score's wavefront: offsets for diagonals k in [lo, hi].
/// Out-of-range reads return kOffsetNull, mirroring the paper's "columns are
/// initialized by negative values; invalid cells ... remain negative".
class Wavefront {
 public:
  Wavefront(diag_t lo, diag_t hi)
      : base_lo_(lo),
        lo_(lo),
        hi_(hi),
        m_(width(), kOffsetNull),
        i_(width(), kOffsetNull),
        d_(width(), kOffsetNull) {
    WFASIC_REQUIRE(lo <= hi, "Wavefront: empty diagonal range");
  }

  /// Re-initialises this wavefront for a new [lo, hi] range, reusing the
  /// existing vector capacity (arena/pool recycling: equivalent to
  /// constructing a fresh Wavefront(lo, hi) without the allocations).
  void reset(diag_t lo, diag_t hi) {
    WFASIC_REQUIRE(lo <= hi, "Wavefront: empty diagonal range");
    base_lo_ = lo;
    lo_ = lo;
    hi_ = hi;
    const std::size_t w = static_cast<std::size_t>(hi - lo + 1);
    m_.assign(w, kOffsetNull);
    i_.assign(w, kOffsetNull);
    d_.assign(w, kOffsetNull);
    trace_base = 0;
  }

  /// reset() without the kOffsetNull fill, for callers that overwrite every
  /// cell of [lo, hi] (all three of M/I/D) before any read — e.g. the hw
  /// Aligner's compute phase, which writes the full row batch by batch.
  /// Row sizes (and therefore storage_width() and the trace layout) match
  /// reset() exactly; only the redundant fill is skipped.
  void reset_unfilled(diag_t lo, diag_t hi) {
    WFASIC_REQUIRE(lo <= hi, "Wavefront: empty diagonal range");
    base_lo_ = lo;
    lo_ = lo;
    hi_ = hi;
    const std::size_t w = static_cast<std::size_t>(hi - lo + 1);
    m_.resize(w);
    i_.resize(w);
    d_.resize(w);
    trace_base = 0;
  }

  /// Narrows the live diagonal range (adaptive wavefront reduction). The
  /// storage keeps its original extent; only the visible bounds shrink.
  void trim(diag_t new_lo, diag_t new_hi) {
    WFASIC_REQUIRE(new_lo >= base_lo_ && new_lo <= new_hi && new_hi <= hi_,
                   "Wavefront::trim: bounds outside storage");
    lo_ = new_lo;
    hi_ = new_hi;
  }

  [[nodiscard]] diag_t lo() const { return lo_; }
  [[nodiscard]] diag_t hi() const { return hi_; }
  /// Live diagonal count (shrinks under trim()).
  [[nodiscard]] std::size_t width() const {
    return static_cast<std::size_t>(hi_ - lo_ + 1);
  }
  /// Allocated diagonal count (fixed at construction).
  [[nodiscard]] std::size_t storage_width() const { return m_.size(); }

  [[nodiscard]] offset_t m(diag_t k) const { return get(m_, k); }
  [[nodiscard]] offset_t i(diag_t k) const { return get(i_, k); }
  [[nodiscard]] offset_t d(diag_t k) const { return get(d_, k); }

  void set_m(diag_t k, offset_t v) { at(m_, k) = v; }
  void set_i(diag_t k, offset_t v) { at(i_, k) = v; }
  void set_d(diag_t k, offset_t v) { at(d_, k) = v; }

  // Raw row access for hot kernels: row[0] is diagonal lo(), valid through
  // diagonal hi(). Hoisting these pointers (plus lo()/hi()) into locals
  // lets per-cell loops avoid re-reading the bounds after every store —
  // the m/i/d accessors above stay the safe default elsewhere.
  [[nodiscard]] const offset_t* row_m() const {
    return m_.data() + (lo_ - base_lo_);
  }
  [[nodiscard]] const offset_t* row_i() const {
    return i_.data() + (lo_ - base_lo_);
  }
  [[nodiscard]] const offset_t* row_d() const {
    return d_.data() + (lo_ - base_lo_);
  }
  [[nodiscard]] offset_t* row_m() { return m_.data() + (lo_ - base_lo_); }
  [[nodiscard]] offset_t* row_i() { return i_.data() + (lo_ - base_lo_); }
  [[nodiscard]] offset_t* row_d() { return d_.data() + (lo_ - base_lo_); }

  /// Bytes of offset payload (for footprint accounting / tracing).
  [[nodiscard]] std::size_t payload_bytes() const {
    return 3 * storage_width() * sizeof(offset_t);
  }

  /// Synthetic base address used by the memory-trace instrumentation; the
  /// M/I/D arrays are laid out consecutively from here.
  std::uint64_t trace_base = 0;

  /// Trace addresses of individual cells (k must be in range for writes;
  /// reads of out-of-range k are not traced by callers).
  [[nodiscard]] std::uint64_t trace_addr_m(diag_t k) const {
    return trace_base +
           static_cast<std::uint64_t>(k - base_lo_) * sizeof(offset_t);
  }
  [[nodiscard]] std::uint64_t trace_addr_i(diag_t k) const {
    return trace_addr_m(k) + storage_width() * sizeof(offset_t);
  }
  [[nodiscard]] std::uint64_t trace_addr_d(diag_t k) const {
    return trace_addr_m(k) + 2 * storage_width() * sizeof(offset_t);
  }

 private:
  [[nodiscard]] offset_t get(const std::vector<offset_t>& v, diag_t k) const {
    if (k < lo_ || k > hi_) return kOffsetNull;
    return v[static_cast<std::size_t>(k - base_lo_)];
  }
  [[nodiscard]] offset_t& at(std::vector<offset_t>& v, diag_t k) {
    WFASIC_ASSERT(k >= lo_ && k <= hi_, "Wavefront write out of range");
    return v[static_cast<std::size_t>(k - base_lo_)];
  }

  diag_t base_lo_;  ///< storage origin (trim never moves it)
  diag_t lo_;
  diag_t hi_;
  std::vector<offset_t> m_;
  std::vector<offset_t> i_;
  std::vector<offset_t> d_;
};

}  // namespace wfasic::core
