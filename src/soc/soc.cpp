#include "soc/soc.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wfasic::soc {

Soc::Soc(SocConfig cfg) : cfg_(cfg), cpu_(cfg.cpu) {
  memory_ = std::make_unique<mem::MainMemory>(cfg_.memory_bytes);
  accelerator_ = std::make_unique<hw::Accelerator>(cfg_.accel, *memory_);
}

BatchResult Soc::run_batch(std::span<const gen::SequencePair> pairs,
                           bool backtrace, bool separate_data) {
  WFASIC_REQUIRE(!pairs.empty(), "Soc::run_batch: empty batch");
  WFASIC_REQUIRE(!backtrace || separate_data || cfg_.accel.num_aligners == 1,
                 "Soc::run_batch: multi-Aligner accelerators require the "
                 "data-separation backtrace method");
  // The result formats carry 16-bit (NBT) / 23-bit (BT) alignment IDs;
  // larger datasets must go through run_dataset(), which chunks them.
  WFASIC_REQUIRE(pairs.size() <= (backtrace ? (1u << 23) : (1u << 16)),
                 "Soc::run_batch: batch exceeds the result-ID width; use "
                 "run_dataset()");
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    WFASIC_REQUIRE(pairs[idx].id == idx,
                   "Soc::run_batch: pair ids must be 0..n-1");
  }

  // Step 1 (Figure 4): the CPU parses inputs into main memory.
  const drv::BatchLayout layout = drv::encode_input_set(
      *memory_, pairs, cfg_.in_addr, cfg_.out_addr);

  // Step 2: configure and start the accelerator, wait for Idle. Stats
  // vectors accumulate across runs of the same accelerator, so remember
  // where this run starts.
  std::vector<std::size_t> aligner_cursors;
  hw::Aligner::PhaseCycles phase_before;
  std::uint64_t stalls_before = 0;
  for (const auto& aligner : accelerator_->aligners()) {
    aligner_cursors.push_back(aligner->records().size());
    phase_before.extend += aligner->phase_cycles().extend;
    phase_before.compute += aligner->phase_cycles().compute;
    phase_before.overhead += aligner->phase_cycles().overhead;
    stalls_before += aligner->output_stall_cycles();
  }
  const std::size_t read_cursor = accelerator_->extractor().records().size();

  drv::Driver driver(*accelerator_);
  BatchResult result;
  const drv::RunStatus status = driver.run(layout, backtrace);
  // A fault-free SoC batch must complete; kPartial (unsupported pairs) is
  // legitimate — the affected alignments simply come back ok = false.
  WFASIC_REQUIRE(status.completed(),
                 "Soc::run_batch: accelerator run did not complete");
  result.accel_cycles = status.cycles;

  result.records.resize(pairs.size());
  for (std::size_t idx = 0; idx < accelerator_->aligners().size(); ++idx) {
    const auto& records = accelerator_->aligners()[idx]->records();
    for (std::size_t r = aligner_cursors[idx]; r < records.size(); ++r) {
      WFASIC_REQUIRE(records[r].id < result.records.size(),
                     "Soc::run_batch: unexpected alignment id in records");
      result.records[records[r].id] = records[r];
    }
  }
  result.read_records.assign(
      accelerator_->extractor().records().begin() +
          static_cast<std::ptrdiff_t>(read_cursor),
      accelerator_->extractor().records().end());
  for (const auto& aligner : accelerator_->aligners()) {
    result.phase.extend += aligner->phase_cycles().extend;
    result.phase.compute += aligner->phase_cycles().compute;
    result.phase.overhead += aligner->phase_cycles().overhead;
    result.output_stall_cycles += aligner->output_stall_cycles();
  }
  result.phase.extend -= phase_before.extend;
  result.phase.compute -= phase_before.compute;
  result.phase.overhead -= phase_before.overhead;
  result.output_stall_cycles -= stalls_before;

  // Step 3: the CPU decodes results (and performs the backtrace).
  result.alignments.resize(pairs.size());
  if (backtrace) {
    const std::vector<drv::BtAlignment> parsed =
        drv::parse_bt_stream(*memory_, layout.out_addr, layout.num_pairs,
                             separate_data, &result.bt_counters);
    for (const drv::BtAlignment& bt : parsed) {
      WFASIC_REQUIRE(bt.id < pairs.size(),
                     "Soc::run_batch: unexpected alignment id in stream");
      result.alignments[bt.id] = drv::reconstruct_alignment(
          bt, pairs[bt.id].a, pairs[bt.id].b, cfg_.accel,
          &result.bt_counters);
    }
    result.cpu_bt_cycles = cpu_.backtrace_cycles(result.bt_counters);
  } else {
    for (const hw::NbtResult& nbt :
         drv::decode_nbt_results(*memory_, layout)) {
      WFASIC_REQUIRE(nbt.id < pairs.size(),
                     "Soc::run_batch: unexpected alignment id in results");
      core::AlignResult& out = result.alignments[nbt.id];
      out.ok = nbt.success;
      out.score = static_cast<score_t>(nbt.score);
    }
  }
  return result;
}

BatchResult Soc::run_dataset(std::span<const gen::SequencePair> pairs,
                             std::size_t batch_pairs, bool backtrace,
                             bool separate_data) {
  WFASIC_REQUIRE(batch_pairs > 0, "Soc::run_dataset: zero batch size");
  BatchResult merged;
  merged.alignments.reserve(pairs.size());
  merged.records.reserve(pairs.size());
  for (std::size_t base = 0; base < pairs.size(); base += batch_pairs) {
    const std::size_t count = std::min(batch_pairs, pairs.size() - base);
    // Per-batch ids restart at 0 (the hardware ID fields are narrow).
    std::vector<gen::SequencePair> batch(pairs.begin() + base,
                                         pairs.begin() + base + count);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].id = static_cast<std::uint32_t>(i);
    }
    const BatchResult part = run_batch(batch, backtrace, separate_data);
    merged.accel_cycles += part.accel_cycles;
    merged.cpu_bt_cycles += part.cpu_bt_cycles;
    merged.alignments.insert(merged.alignments.end(),
                             part.alignments.begin(), part.alignments.end());
    merged.records.insert(merged.records.end(), part.records.begin(),
                          part.records.end());
    merged.read_records.insert(merged.read_records.end(),
                               part.read_records.begin(),
                               part.read_records.end());
    merged.phase.extend += part.phase.extend;
    merged.phase.compute += part.phase.compute;
    merged.phase.overhead += part.phase.overhead;
    merged.output_stall_cycles += part.output_stall_cycles;
    merged.bt_counters.alignments += part.bt_counters.alignments;
    merged.bt_counters.blocks_scanned += part.bt_counters.blocks_scanned;
    merged.bt_counters.blocks_copied += part.bt_counters.blocks_copied;
    merged.bt_counters.path_steps += part.bt_counters.path_steps;
    merged.bt_counters.match_chars += part.bt_counters.match_chars;
  }
  return merged;
}

cpu::CpuModel::RunResult Soc::run_cpu_baseline(
    const gen::SequencePair& pair, core::ExtendMode mode,
    core::Traceback traceback) const {
  return cpu_.run_wfa(pair.a, pair.b, cfg_.accel.pen, mode, traceback);
}

}  // namespace wfasic::soc
