#include "soc/soc.hpp"

#include "common/assert.hpp"

namespace wfasic::soc {

Soc::Soc(SocConfig cfg) : cfg_(cfg), cpu_(cfg.cpu) {
  memory_ = std::make_unique<mem::MainMemory>(cfg_.memory_bytes);
  accelerator_ = std::make_unique<hw::Accelerator>(cfg_.accel, *memory_);

  // The SoC is a thin facade over a K=1 engine whose device 0 borrows this
  // SoC's memory and accelerator: direct register access, fault injection
  // and engine runs all see the same device.
  engine::EngineConfig engine_cfg;
  engine_cfg.num_devices = 1;
  engine_cfg.device.accel = cfg_.accel;
  engine_cfg.device.cpu = cfg_.cpu;
  engine_cfg.device.memory_bytes = cfg_.memory_bytes;
  engine_cfg.device.in_addr = cfg_.in_addr;
  engine_cfg.device.out_addr = cfg_.out_addr;
  engine_cfg.pipelined_accounting = cfg_.pipelined_accounting;
  engine_ = std::make_unique<engine::Engine>(engine_cfg, *memory_,
                                             *accelerator_);
}

BatchResult Soc::run_batch(std::span<const gen::SequencePair> pairs,
                           bool backtrace, bool separate_data) {
  WFASIC_REQUIRE(!pairs.empty(), "Soc::run_batch: empty batch");
  WFASIC_REQUIRE(!backtrace || separate_data || cfg_.accel.num_aligners == 1,
                 "Soc::run_batch: multi-Aligner accelerators require the "
                 "data-separation backtrace method");
  // The result formats carry 16-bit (NBT) / 23-bit (BT) alignment IDs;
  // larger datasets must go through run_dataset(), which chunks them.
  WFASIC_REQUIRE(pairs.size() <= (backtrace ? (1u << 23) : (1u << 16)),
                 "Soc::run_batch: batch exceeds the result-ID width; use "
                 "run_dataset()");
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    WFASIC_REQUIRE(pairs[idx].id == idx,
                   "Soc::run_batch: pair ids must be 0..n-1");
  }
  return engine_->run_batch(pairs, backtrace, separate_data);
}

BatchResult Soc::run_dataset(std::span<const gen::SequencePair> pairs,
                             std::size_t batch_pairs, bool backtrace,
                             bool separate_data) {
  WFASIC_REQUIRE(batch_pairs > 0, "Soc::run_dataset: zero batch size");
  return engine_->run_dataset(pairs, batch_pairs, backtrace, separate_data);
}

cpu::CpuModel::RunResult Soc::run_cpu_baseline(
    const gen::SequencePair& pair, core::ExtendMode mode,
    core::Traceback traceback) const {
  return cpu_.run_wfa(pair.a, pair.b, cfg_.accel.pen, mode, traceback);
}

}  // namespace wfasic::soc
