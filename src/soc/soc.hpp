// The full SoC (Figure 3/4): the RISC-V CPU timing model, the WFAsic
// accelerator, and shared main memory, wired together behind the
// co-designed batch flow the paper evaluates:
//   CPU encodes input -> accelerator aligns (and streams backtrace data)
//   -> CPU decodes results and performs the backtrace.
// Since the engine refactor the Soc is a facade over a single-device
// engine::Engine (engine/engine.hpp) — the blocking run_batch/run_dataset
// API is preserved, but datasets execute on the asynchronous
// submission/completion queues with pipelined phase accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "drv/backtrace_cpu.hpp"
#include "drv/driver.hpp"
#include "engine/engine.hpp"
#include "gen/seqgen.hpp"
#include "hw/accelerator.hpp"
#include "mem/main_memory.hpp"

namespace wfasic::soc {

struct SocConfig {
  hw::AcceleratorConfig accel;
  cpu::CpuModel::Config cpu;
  std::size_t memory_bytes = 256ull << 20;
  std::uint64_t in_addr = 0x0000'1000;
  std::uint64_t out_addr = 0x0800'0000;  ///< 128 MB for backtrace streams
  /// run_dataset: report the pipelined makespan (encode/align/decode
  /// overlapped) in BatchResult::pipeline_cycles. Single batches always
  /// keep the serial accounting.
  bool pipelined_accounting = true;
};

/// Outcome of one accelerator batch run (engine/backend.hpp). Legacy
/// fields are unchanged; engine runs add encode_cycles/pipeline_cycles.
using BatchResult = engine::BatchResult;

class Soc {
 public:
  explicit Soc(SocConfig cfg = {});

  /// Runs one batch through the co-design flow. `separate_data` selects
  /// the multi-Aligner backtrace method (must be true when the accelerator
  /// has more than one Aligner).
  [[nodiscard]] BatchResult run_batch(
      std::span<const gen::SequencePair> pairs, bool backtrace,
      bool separate_data);

  /// Processes an arbitrarily large dataset in batches of at most
  /// `batch_pairs` (the driver re-encodes and re-launches per batch, as a
  /// real deployment would to bound the input arena and the 16/23-bit
  /// result-ID fields). Results are merged in dataset order; cycle
  /// counters accumulate.
  [[nodiscard]] BatchResult run_dataset(
      std::span<const gen::SequencePair> pairs, std::size_t batch_pairs,
      bool backtrace, bool separate_data);

  /// The CPU software baseline for one pair (the paper's WFA-CPU).
  [[nodiscard]] cpu::CpuModel::RunResult run_cpu_baseline(
      const gen::SequencePair& pair, core::ExtendMode mode,
      core::Traceback traceback) const;

  [[nodiscard]] const SocConfig& config() const { return cfg_; }
  [[nodiscard]] hw::Accelerator& accelerator() { return *accelerator_; }
  [[nodiscard]] mem::MainMemory& memory() { return *memory_; }
  /// The engine behind the facade (device 0 borrows this SoC's memory and
  /// accelerator, so engine runs and direct register access see the same
  /// device state).
  [[nodiscard]] engine::Engine& engine() { return *engine_; }

 private:
  SocConfig cfg_;
  std::unique_ptr<mem::MainMemory> memory_;
  std::unique_ptr<hw::Accelerator> accelerator_;
  std::unique_ptr<engine::Engine> engine_;
  cpu::CpuModel cpu_;
};

}  // namespace wfasic::soc
