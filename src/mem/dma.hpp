// The accelerator's DMA engine (Figure 5): streams the input set from main
// memory into the Input FIFO and drains the Output FIFO back to memory,
// sharing a single AXI-Full port (one 16-byte beat per cycle, writes have
// priority so result/backtrace data is never backed up into the Aligners).
//
// Error path: an attached fault injector can corrupt, drop, duplicate, or
// error-terminate read beats. An AXI SLVERR/DECERR latches bus_error() and
// kills the read stream; the Accelerator turns that into the dma-error
// interrupt (hw/regs.hpp) instead of letting the pipeline starve.
#pragma once

#include <cstdint>

#include "mem/axi.hpp"
#include "mem/main_memory.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fifo.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"

namespace wfasic::mem {

class Dma final : public sim::Component {
 public:
  Dma(MainMemory& memory, sim::ShowAheadFifo<Beat>& input_fifo,
      sim::ShowAheadFifo<Beat>& output_fifo, AxiTiming timing)
      : sim::Component("dma"),
        memory_(memory),
        input_fifo_(input_fifo),
        output_fifo_(output_fifo),
        timing_(timing) {}

  /// Arms the read stream: `bytes` must be a whole number of beats.
  /// Clears any latched bus error from the previous run.
  void configure_read(std::uint64_t addr, std::uint64_t bytes) {
    WFASIC_REQUIRE(bytes % kBeatBytes == 0,
                   "Dma::configure_read: size must be beat-aligned");
    read_ptr_ = addr;
    read_beats_left_ = bytes / kBeatBytes;
    burst_beats_done_ = 0;
    latency_left_ = read_beats_left_ > 0 ? timing_.read_latency : 0;
    bus_error_ = false;
    ecc_fault_ = false;
    duplicate_pending_ = false;
    // Drain any uncorrectable sticky flag a host-side read left behind so
    // it cannot mis-attribute to this stream's first beat.
    (void)memory_.take_uncorrectable();
  }

  /// Sets the base address results are written to.
  void configure_write(std::uint64_t addr) { write_ptr_ = addr; }

  /// Abandons the in-flight read stream (hardware soft reset / error
  /// abort). The latched bus error, if any, survives until the next
  /// configure_read so the CPU can still read the cause.
  void abort() {
    read_beats_left_ = 0;
    latency_left_ = 0;
    burst_beats_done_ = 0;
    duplicate_pending_ = false;
    read_stream_started_ = false;
  }

  /// Fault-injection hook (nullptr: fault-free operation).
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  [[nodiscard]] bool read_done() const { return read_beats_left_ == 0; }
  [[nodiscard]] bool bus_error() const { return bus_error_; }
  /// An uncorrectable ECC granule was hit by a read beat: the stream is
  /// dead (the data cannot be trusted) and the Accelerator surfaces
  /// kErrEccUnc.
  [[nodiscard]] bool ecc_fault() const { return ecc_fault_; }
  [[nodiscard]] std::uint64_t write_ptr() const { return write_ptr_; }

  [[nodiscard]] std::uint64_t beats_read() const { return beats_read_; }
  [[nodiscard]] std::uint64_t beats_written() const { return beats_written_; }
  [[nodiscard]] std::uint64_t read_stalls_fifo_full() const {
    return read_stalls_fifo_full_;
  }
  [[nodiscard]] std::uint64_t read_stalls_port_busy() const {
    return read_stalls_port_busy_;
  }

  /// Snapshot contract (sim/snapshot.hpp). The injector pointer is wiring
  /// (re-attached by the Accelerator); everything else round-trips.
  void save_state(sim::SnapshotWriter& w) const {
    w.u64(read_ptr_);
    w.u64(read_beats_left_);
    w.u32(burst_beats_done_);
    w.u32(latency_left_);
    w.u64(write_ptr_);
    w.boolean(bus_error_);
    w.boolean(ecc_fault_);
    w.boolean(duplicate_pending_);
    w.bytes(std::span<const std::uint8_t>(duplicate_beat_.data.data(),
                                          kBeatBytes));
    w.boolean(read_stream_started_);
    w.u64(read_stream_start_);
    w.u64(beats_read_);
    w.u64(beats_written_);
    w.u64(read_stalls_fifo_full_);
    w.u64(read_stalls_port_busy_);
  }

  void restore_state(sim::SnapshotReader& r) {
    read_ptr_ = r.u64();
    read_beats_left_ = r.u64();
    burst_beats_done_ = r.u32();
    latency_left_ = r.u32();
    write_ptr_ = r.u64();
    bus_error_ = r.boolean();
    ecc_fault_ = r.boolean();
    duplicate_pending_ = r.boolean();
    r.bytes(std::span<std::uint8_t>(duplicate_beat_.data.data(), kBeatBytes));
    read_stream_started_ = r.boolean();
    read_stream_start_ = r.u64();
    beats_read_ = r.u64();
    beats_written_ = r.u64();
    read_stalls_fifo_full_ = r.u64();
    read_stalls_port_busy_ = r.u64();
  }

  // Quiescence contract (see sim::Component): the DMA is quiet while it
  // burns burst latency (a pure countdown) or has nothing to move — the
  // only other per-cycle effects are the stall counters, which skip_quiet
  // bulk-applies. Any cycle that touches a FIFO or memory reports 0.
  // The kQuietForever reports stay valid until a declared waker acts:
  // "both streams idle" ends only when a register write launches a run
  // (the scheduler is resynced outside any tick), and "input FIFO full"
  // ends only when the Extractor — a registered waker — pops a beat.
  [[nodiscard]] sim::cycle_t quiet_for(sim::cycle_t /*now*/) const override {
    if (!output_fifo_.empty()) return 0;  // a write beat moves this cycle
    if (read_beats_left_ == 0) return kQuietForever;  // both streams idle
    if (latency_left_ > 0) return latency_left_;
    if (input_fifo_.full()) return kQuietForever;  // stall until a pop
    return 0;  // a read beat (or duplicate) is ready to issue
  }

  void skip_quiet(sim::cycle_t n) override {
    if (!output_fifo_.empty() || read_beats_left_ == 0) return;
    if (latency_left_ > 0) {
      latency_left_ -= static_cast<unsigned>(n);
      return;
    }
    if (input_fifo_.full()) read_stalls_fifo_full_ += n;
  }

  void tick(sim::cycle_t now) override {
    (void)now;  // only read by trace emission
    bool port_used = false;

    // Write side first: posted writes drain the Output FIFO at one beat per
    // cycle so backtrace traffic never deadlocks the Aligners.
    if (!output_fifo_.empty()) {
      Beat beat = output_fifo_.pop();
      sim::DmaBeatFault wfault;
      if (injector_ != nullptr) {
        wfault = injector_->dma_write_beat_fault(beats_written_);
      }
      if (wfault.corrupt_mask != 0) {
        beat.data[wfault.corrupt_byte] ^= wfault.corrupt_mask;
      }
      if (!wfault.drop) {
        // A dropped beat leaves the previous contents of this output slot
        // in place; the stream pointer still advances (the bus lost the
        // beat, the engine did not).
        memory_.write(write_ptr_, std::span<const std::uint8_t>(
                                      beat.data.data(), kBeatBytes));
      }
      write_ptr_ += kBeatBytes;
      ++beats_written_;
      port_used = true;
    }

    // Read side: the burst latency counter runs regardless of port
    // arbitration (the memory controller pipelines the request), but the
    // data beat itself needs the shared port and space in the Input FIFO.
    if (read_beats_left_ == 0) return;
    if (latency_left_ > 0) {
      --latency_left_;
      return;
    }
    if (port_used) {
      ++read_stalls_port_busy_;
      return;
    }
    if (input_fifo_.full()) {
      ++read_stalls_fifo_full_;
      return;
    }
    if (duplicate_pending_) {
      // Second delivery of a duplicated beat: re-send the previous data
      // without advancing the stream.
      input_fifo_.push(duplicate_beat_);
      duplicate_pending_ = false;
      return;
    }
    sim::DmaBeatFault fault;
    if (injector_ != nullptr) {
      fault = injector_->dma_read_beat_fault(beats_read_);
    }
    if (fault.bus_error) {
      // SLVERR/DECERR: the transfer is dead; latch the error and stop
      // issuing beats. The Accelerator surfaces this via kRegErrStatus.
      bus_error_ = true;
      read_beats_left_ = 0;
      read_stream_started_ = false;
      if (tracing()) {
        trace()->instant(trace_track(), "dma-bus-error", "error", now);
      }
      return;
    }
    Beat beat;
    memory_.read(read_ptr_,
                 std::span<std::uint8_t>(beat.data.data(), kBeatBytes));
    if (memory_.ecc_enabled() && memory_.take_uncorrectable()) {
      // The granule under this beat is unrecoverably corrupt: poisoning
      // the response and killing the stream models the controller's
      // uncorrectable-error slave response.
      ecc_fault_ = true;
      read_beats_left_ = 0;
      read_stream_started_ = false;
      if (tracing()) {
        trace()->instant(trace_track(), "dma-ecc-uncorrectable", "error",
                         now);
      }
      return;
    }
    if (!read_stream_started_) {
      read_stream_started_ = true;
      read_stream_start_ = now;
    }
    if (fault.corrupt_mask != 0) {
      beat.data[fault.corrupt_byte] ^= fault.corrupt_mask;
    }
    if (!fault.drop) {
      input_fifo_.push(beat);
      if (fault.duplicate) {
        duplicate_pending_ = true;
        duplicate_beat_ = beat;
      }
    }
    read_ptr_ += kBeatBytes;
    --read_beats_left_;
    ++beats_read_;
    if (read_beats_left_ == 0) {
      read_stream_started_ = false;
      if (tracing()) {
        trace()->span(trace_track(), "dma-read-stream", "dma",
                      read_stream_start_, now);
      }
    }
    ++burst_beats_done_;
    if (burst_beats_done_ == timing_.burst_beats && read_beats_left_ > 0) {
      burst_beats_done_ = 0;
      latency_left_ = timing_.read_latency;
    }
  }

 private:
  MainMemory& memory_;
  sim::ShowAheadFifo<Beat>& input_fifo_;
  sim::ShowAheadFifo<Beat>& output_fifo_;
  AxiTiming timing_;
  sim::FaultInjector* injector_ = nullptr;

  std::uint64_t read_ptr_ = 0;
  std::uint64_t read_beats_left_ = 0;
  unsigned burst_beats_done_ = 0;
  unsigned latency_left_ = 0;
  std::uint64_t write_ptr_ = 0;
  bool bus_error_ = false;
  bool ecc_fault_ = false;
  bool duplicate_pending_ = false;
  Beat duplicate_beat_;
  // Trace-only bookkeeping: never read by the datapath.
  bool read_stream_started_ = false;
  sim::cycle_t read_stream_start_ = 0;

  std::uint64_t beats_read_ = 0;
  std::uint64_t beats_written_ = 0;
  std::uint64_t read_stalls_fifo_full_ = 0;
  std::uint64_t read_stalls_port_busy_ = 0;
};

}  // namespace wfasic::mem
