// AXI transfer vocabulary: 16-byte beats (the SoC's AXI-Full data width,
// §4.1) and the timing parameters of the accelerator's memory path.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/assert.hpp"

namespace wfasic::mem {

/// One AXI-Full data beat: 16 bytes.
inline constexpr std::size_t kBeatBytes = 16;

struct Beat {
  std::array<std::uint8_t, kBeatBytes> data{};

  [[nodiscard]] std::uint32_t u32(std::size_t word) const {
    WFASIC_REQUIRE(word < 4, "Beat::u32 word index out of range");
    std::uint32_t v = 0;
    std::memcpy(&v, data.data() + 4 * word, 4);
    return v;
  }
  void set_u32(std::size_t word, std::uint32_t value) {
    WFASIC_REQUIRE(word < 4, "Beat::set_u32 word index out of range");
    std::memcpy(data.data() + 4 * word, &value, 4);
  }

  friend bool operator==(const Beat&, const Beat&) = default;
};

/// Timing of the accelerator's AXI-Full memory path. Defaults are
/// calibrated so the per-pair reading cycles land near Table 1 of the paper
/// (75 / 376 / 3420 cycles for the 100 bp / 1 Kbp / 10 Kbp sets):
/// bursts of 16 beats with a 27-cycle request-to-first-beat latency give
///   ceil(beats/16) * 27 + beats
/// which evaluates to 71 / 374 / 3482 for those sets.
struct AxiTiming {
  unsigned burst_beats = 16;    ///< beats per read burst
  unsigned read_latency = 27;   ///< request-to-first-beat cycles per burst
  unsigned write_latency = 0;   ///< posted writes: buffered, no stall

  /// Idealised cycles to stream `beats` beats (no contention, no stalls).
  [[nodiscard]] std::uint64_t stream_read_cycles(std::uint64_t beats) const {
    if (beats == 0) return 0;
    const std::uint64_t bursts = (beats + burst_beats - 1) / burst_beats;
    return bursts * read_latency + beats;
  }
};

}  // namespace wfasic::mem
