// Lazily-faulted zero-initialized byte buffer for large memory models.
//
// A simulated main memory is sized for the worst case (tens to hundreds of
// MB) but a typical launch touches a small fraction of it. Backing it with
// std::vector zero-fills every page at construction, so building an Engine
// costs tens of milliseconds of kernel page-fault time per device — enough
// to swamp short benches in sys time before a single cycle is simulated.
//
// An anonymous private mmap has the same observable contents (every byte
// reads zero until written) but the kernel materializes pages on first
// touch, so untouched memory costs nothing. Behavior is bit-identical to a
// zero-filled vector; only host-side cost moves. Non-POSIX builds fall back
// to the vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define WFASIC_ZERO_PAGES_MMAP 1
#endif

#include "common/assert.hpp"

namespace wfasic::mem {

class ZeroPages {
 public:
  explicit ZeroPages(std::size_t size) : size_(size) {
#ifdef WFASIC_ZERO_PAGES_MMAP
    if (size_ > 0) {
      // MAP_NORESERVE: the model intentionally over-provisions; only pages
      // actually written should ever consume memory.
      void* mapped =
          ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
      WFASIC_REQUIRE(mapped != MAP_FAILED, "ZeroPages: mmap failed");
      data_ = static_cast<std::uint8_t*>(mapped);
    }
#else
    fallback_.assign(size_, 0);
    data_ = fallback_.data();
#endif
  }

  ~ZeroPages() {
#ifdef WFASIC_ZERO_PAGES_MMAP
    if (data_ != nullptr) ::munmap(data_, size_);
#endif
  }

  ZeroPages(const ZeroPages&) = delete;
  ZeroPages& operator=(const ZeroPages&) = delete;
  ZeroPages(ZeroPages&& other) noexcept
      : size_(other.size_),
        data_(other.data_),
        fallback_(std::move(other.fallback_)) {
    other.data_ = nullptr;
    other.size_ = 0;
#ifndef WFASIC_ZERO_PAGES_MMAP
    data_ = fallback_.data();
#endif
  }
  ZeroPages& operator=(ZeroPages&&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::uint8_t& operator[](std::size_t i) const {
    return data_[i];
  }

 private:
  std::size_t size_ = 0;
  std::uint8_t* data_ = nullptr;
  std::vector<std::uint8_t> fallback_;  ///< used only without mmap
};

}  // namespace wfasic::mem
