// Off-chip main memory model: a flat byte-addressable store with bounds
// checking and little-endian word helpers. Timing lives in the DMA/AXI
// models, not here.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::mem {

class MainMemory {
 public:
  explicit MainMemory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  void write(std::uint64_t addr, std::span<const std::uint8_t> data) {
    WFASIC_REQUIRE(in_range(addr, data.size()), "MainMemory::write OOB");
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
  }

  void read(std::uint64_t addr, std::span<std::uint8_t> out) const {
    WFASIC_REQUIRE(in_range(addr, out.size()), "MainMemory::read OOB");
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
  }

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::read_u8 OOB");
    return bytes_[addr];
  }

  void write_u8(std::uint64_t addr, std::uint8_t value) {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::write_u8 OOB");
    bytes_[addr] = value;
  }

  /// Fault-injection hook: flips one bit in place (models a DRAM upset in
  /// the input/output regions). bit must be 0..7.
  void flip_bit(std::uint64_t addr, unsigned bit) {
    WFASIC_REQUIRE(in_range(addr, 1) && bit < 8, "MainMemory::flip_bit OOB");
    bytes_[addr] ^= static_cast<std::uint8_t>(1u << bit);
  }

  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const {
    std::uint32_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 4));
    return v;  // host is little-endian on all supported platforms
  }

  void write_u32(std::uint64_t addr, std::uint32_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 4));
  }

  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 8));
    return v;
  }

  void write_u64(std::uint64_t addr, std::uint64_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 8));
  }

 private:
  [[nodiscard]] bool in_range(std::uint64_t addr, std::size_t len) const {
    return addr <= bytes_.size() && len <= bytes_.size() - addr;
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace wfasic::mem
