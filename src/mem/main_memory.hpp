// Off-chip main memory model: a flat byte-addressable store with bounds
// checking and little-endian word helpers. Timing lives in the DMA/AXI
// models, not here.
//
// Optional SECDED ECC (enable_ecc): every 8-byte granule carries a
// side-band check byte. Reads scrub — a single flipped bit is corrected in
// place and counted; a double flip is left as-is, counted, and latched in
// a sticky uncorrectable flag the DMA polls per beat (see
// docs/RELIABILITY.md). ECC is off by default so the fault-free byte store
// behaves exactly as before.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/ecc.hpp"
#include "mem/zero_pages.hpp"
#include "sim/snapshot.hpp"

namespace wfasic::mem {

class MainMemory {
 public:
  // ZeroPages defers zero-filling to first touch, so constructing a large
  // memory (and with it an Engine or Soc) is O(1) host work instead of a
  // multi-millisecond page-fault storm. Contents are identical: all zeros.
  explicit MainMemory(std::size_t size_bytes)
      : bytes_(size_bytes),
        dirty_((size_bytes + kSnapshotPage - 1) / kSnapshotPage, 0) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  void write(std::uint64_t addr, std::span<const std::uint8_t> data) {
    WFASIC_REQUIRE(in_range(addr, data.size()), "MainMemory::write OOB");
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
    mark_dirty(addr, data.size());
    if (ecc_) refresh_checks(addr, data.size());
  }

  void read(std::uint64_t addr, std::span<std::uint8_t> out) const {
    WFASIC_REQUIRE(in_range(addr, out.size()), "MainMemory::read OOB");
    if (ecc_) scrub_range(addr, out.size());
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
  }

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::read_u8 OOB");
    if (ecc_) scrub_range(addr, 1);
    return bytes_[addr];
  }

  void write_u8(std::uint64_t addr, std::uint8_t value) {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::write_u8 OOB");
    bytes_[addr] = value;
    mark_dirty(addr, 1);
    if (ecc_) refresh_checks(addr, 1);
  }

  /// Fault-injection hook: flips one bit in place (models a DRAM upset in
  /// the input/output regions). bit must be 0..7. Deliberately does NOT
  /// refresh the ECC check byte — that is the whole point of the fault.
  void flip_bit(std::uint64_t addr, unsigned bit) {
    WFASIC_REQUIRE(in_range(addr, 1) && bit < 8, "MainMemory::flip_bit OOB");
    bytes_[addr] ^= static_cast<std::uint8_t>(1u << bit);
    mark_dirty(addr, 1);
  }

  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const {
    std::uint32_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 4));
    return v;  // host is little-endian on all supported platforms
  }

  void write_u32(std::uint64_t addr, std::uint32_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 4));
  }

  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 8));
    return v;
  }

  void write_u64(std::uint64_t addr, std::uint64_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 8));
  }

  /// Turn on SECDED protection: builds check bytes over the current
  /// contents. Idempotent.
  void enable_ecc() {
    if (ecc_) return;
    ecc_ = true;
    check_.assign((bytes_.size() + kGranule - 1) / kGranule, 0);
    for (std::size_t g = 0; g < check_.size(); ++g) {
      check_[g] = ecc::secded_encode(granule_word(g));
    }
  }

  [[nodiscard]] bool ecc_enabled() const { return ecc_; }

  /// Total single-bit corrections performed by read scrubbing.
  [[nodiscard]] std::uint64_t ecc_corrected() const { return ecc_corrected_; }

  /// Total uncorrectable (double-bit) granules observed by reads.
  [[nodiscard]] std::uint64_t ecc_uncorrectable() const {
    return ecc_uncorrectable_;
  }

  /// Sticky flag: set when any read since the last call touched an
  /// uncorrectable granule. Consuming it clears it — the DMA polls this
  /// after every beat so the error attributes to the stream that read it.
  [[nodiscard]] bool take_uncorrectable() const {
    const bool pending = pending_uncorrectable_;
    pending_uncorrectable_ = false;
    return pending;
  }

  /// Snapshot contract (sim/snapshot.hpp). Only pages ever touched since
  /// construction are serialized — the rest are still all-zero by the
  /// ZeroPages invariant, so a multi-GB memory snapshots in O(working set).
  /// In ECC mode each dirty page's check-byte slice is carried verbatim:
  /// recomputing it on restore would silently repair an injected
  /// data/check-byte desync (flip_bit deliberately leaves one).
  void save_state(sim::SnapshotWriter& w) const {
    w.u64(bytes_.size());
    w.boolean(ecc_);
    w.u64(ecc_corrected_);
    w.u64(ecc_uncorrectable_);
    w.boolean(pending_uncorrectable_);
    std::uint64_t pages = 0;
    for (const std::uint8_t d : dirty_) pages += d;
    w.u64(pages);
    for (std::size_t p = 0; p < dirty_.size(); ++p) {
      if (dirty_[p] == 0) continue;
      const std::size_t base = p * kSnapshotPage;
      const std::size_t len = std::min(kSnapshotPage, bytes_.size() - base);
      w.u64(p);
      w.bytes(std::span<const std::uint8_t>(bytes_.data() + base, len));
      if (ecc_) {
        const std::size_t g_first = base / kGranule;
        const std::size_t g_last = (base + len - 1) / kGranule;
        w.bytes(std::span<const std::uint8_t>(check_.data() + g_first,
                                              g_last - g_first + 1));
      }
    }
  }

  void restore_state(sim::SnapshotReader& r) {
    const std::uint64_t size = r.u64();
    const bool ecc = r.boolean();
    if (!r.ok()) return;
    if (size != bytes_.size() || ecc != ecc_) {
      (void)r.fail(sim::SnapshotError::kConfigMismatch);
      return;
    }
    ecc_corrected_ = r.u64();
    ecc_uncorrectable_ = r.u64();
    pending_uncorrectable_ = r.boolean();
    // Pages dirty here but absent from the blob revert to all-zero (the
    // snapshot-time state): zero the data, rebuild the check bytes.
    std::vector<std::uint8_t> was_dirty(dirty_.size(), 0);
    for (std::size_t p = 0; p < dirty_.size(); ++p) {
      was_dirty[p] = dirty_[p];
      dirty_[p] = 0;
    }
    const std::uint64_t pages = r.u64();
    for (std::uint64_t i = 0; i < pages && r.ok(); ++i) {
      const std::uint64_t p = r.u64();
      if (p >= dirty_.size()) {
        (void)r.fail(sim::SnapshotError::kBadValue);
        return;
      }
      const std::size_t base = p * kSnapshotPage;
      const std::size_t len = std::min(kSnapshotPage, bytes_.size() - base);
      r.bytes(std::span<std::uint8_t>(bytes_.data() + base, len));
      if (ecc_) {
        const std::size_t g_first = base / kGranule;
        const std::size_t g_last = (base + len - 1) / kGranule;
        r.bytes(std::span<std::uint8_t>(check_.data() + g_first,
                                        g_last - g_first + 1));
      }
      dirty_[p] = 1;
      was_dirty[p] = 0;
    }
    if (!r.ok()) return;
    for (std::size_t p = 0; p < was_dirty.size(); ++p) {
      if (was_dirty[p] == 0) continue;
      const std::size_t base = p * kSnapshotPage;
      const std::size_t len = std::min(kSnapshotPage, bytes_.size() - base);
      std::memset(bytes_.data() + base, 0, len);
      if (ecc_) refresh_checks(base, len);
    }
  }

 private:
  static constexpr std::size_t kGranule = 8;
  static constexpr std::size_t kSnapshotPage = 4096;

  /// Marks the snapshot dirty-page bitmap for [addr, addr + len). Const
  /// because scrub-on-read repairs storage through const paths.
  void mark_dirty(std::uint64_t addr, std::size_t len) const {
    if (len == 0) return;
    const std::size_t first = addr / kSnapshotPage;
    const std::size_t last = (addr + len - 1) / kSnapshotPage;
    for (std::size_t p = first; p <= last; ++p) dirty_[p] = 1;
  }

  [[nodiscard]] bool in_range(std::uint64_t addr, std::size_t len) const {
    return addr <= bytes_.size() && len <= bytes_.size() - addr;
  }

  [[nodiscard]] std::uint64_t granule_word(std::size_t g) const {
    const std::size_t base = g * kGranule;
    const std::size_t len = std::min(kGranule, bytes_.size() - base);
    std::uint64_t word = 0;
    std::memcpy(&word, bytes_.data() + base, len);
    return word;
  }

  void store_granule(std::size_t g, std::uint64_t word) const {
    const std::size_t base = g * kGranule;
    const std::size_t len = std::min(kGranule, bytes_.size() - base);
    std::memcpy(bytes_.data() + base, &word, len);
    mark_dirty(base, len);
  }

  void refresh_checks(std::uint64_t addr, std::size_t len) {
    const std::size_t first = addr / kGranule;
    const std::size_t last = (addr + len - 1) / kGranule;
    for (std::size_t g = first; g <= last; ++g) {
      check_[g] = ecc::secded_encode(granule_word(g));
    }
  }

  // Scrub-on-read is logically const: it repairs storage, it does not
  // change the observable (corrected) contents. Hence the mutable store.
  void scrub_range(std::uint64_t addr, std::size_t len) const {
    const std::size_t first = addr / kGranule;
    const std::size_t last = (addr + len - 1) / kGranule;
    for (std::size_t g = first; g <= last; ++g) {
      const ecc::EccDecode decode =
          ecc::secded_decode(granule_word(g), check_[g]);
      switch (decode.state) {
        case ecc::EccState::kClean:
          break;
        case ecc::EccState::kCorrected:
          store_granule(g, decode.data);
          ++ecc_corrected_;
          break;
        case ecc::EccState::kUncorrectable:
          ++ecc_uncorrectable_;
          pending_uncorrectable_ = true;
          break;
      }
    }
  }

  mutable ZeroPages bytes_;
  mutable std::vector<std::uint8_t> check_;
  mutable std::vector<std::uint8_t> dirty_;  ///< snapshot page bitmap
  bool ecc_ = false;
  mutable std::uint64_t ecc_corrected_ = 0;
  mutable std::uint64_t ecc_uncorrectable_ = 0;
  mutable bool pending_uncorrectable_ = false;
};

}  // namespace wfasic::mem
