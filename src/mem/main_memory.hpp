// Off-chip main memory model: a flat byte-addressable store with bounds
// checking and little-endian word helpers. Timing lives in the DMA/AXI
// models, not here.
//
// Optional SECDED ECC (enable_ecc): every 8-byte granule carries a
// side-band check byte. Reads scrub — a single flipped bit is corrected in
// place and counted; a double flip is left as-is, counted, and latched in
// a sticky uncorrectable flag the DMA polls per beat (see
// docs/RELIABILITY.md). ECC is off by default so the fault-free byte store
// behaves exactly as before.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/ecc.hpp"
#include "mem/zero_pages.hpp"

namespace wfasic::mem {

class MainMemory {
 public:
  // ZeroPages defers zero-filling to first touch, so constructing a large
  // memory (and with it an Engine or Soc) is O(1) host work instead of a
  // multi-millisecond page-fault storm. Contents are identical: all zeros.
  explicit MainMemory(std::size_t size_bytes) : bytes_(size_bytes) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  void write(std::uint64_t addr, std::span<const std::uint8_t> data) {
    WFASIC_REQUIRE(in_range(addr, data.size()), "MainMemory::write OOB");
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
    if (ecc_) refresh_checks(addr, data.size());
  }

  void read(std::uint64_t addr, std::span<std::uint8_t> out) const {
    WFASIC_REQUIRE(in_range(addr, out.size()), "MainMemory::read OOB");
    if (ecc_) scrub_range(addr, out.size());
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
  }

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::read_u8 OOB");
    if (ecc_) scrub_range(addr, 1);
    return bytes_[addr];
  }

  void write_u8(std::uint64_t addr, std::uint8_t value) {
    WFASIC_REQUIRE(in_range(addr, 1), "MainMemory::write_u8 OOB");
    bytes_[addr] = value;
    if (ecc_) refresh_checks(addr, 1);
  }

  /// Fault-injection hook: flips one bit in place (models a DRAM upset in
  /// the input/output regions). bit must be 0..7. Deliberately does NOT
  /// refresh the ECC check byte — that is the whole point of the fault.
  void flip_bit(std::uint64_t addr, unsigned bit) {
    WFASIC_REQUIRE(in_range(addr, 1) && bit < 8, "MainMemory::flip_bit OOB");
    bytes_[addr] ^= static_cast<std::uint8_t>(1u << bit);
  }

  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const {
    std::uint32_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 4));
    return v;  // host is little-endian on all supported platforms
  }

  void write_u32(std::uint64_t addr, std::uint32_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 4));
  }

  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    read(addr, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v), 8));
    return v;
  }

  void write_u64(std::uint64_t addr, std::uint64_t value) {
    write(addr, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&value), 8));
  }

  /// Turn on SECDED protection: builds check bytes over the current
  /// contents. Idempotent.
  void enable_ecc() {
    if (ecc_) return;
    ecc_ = true;
    check_.assign((bytes_.size() + kGranule - 1) / kGranule, 0);
    for (std::size_t g = 0; g < check_.size(); ++g) {
      check_[g] = ecc::secded_encode(granule_word(g));
    }
  }

  [[nodiscard]] bool ecc_enabled() const { return ecc_; }

  /// Total single-bit corrections performed by read scrubbing.
  [[nodiscard]] std::uint64_t ecc_corrected() const { return ecc_corrected_; }

  /// Total uncorrectable (double-bit) granules observed by reads.
  [[nodiscard]] std::uint64_t ecc_uncorrectable() const {
    return ecc_uncorrectable_;
  }

  /// Sticky flag: set when any read since the last call touched an
  /// uncorrectable granule. Consuming it clears it — the DMA polls this
  /// after every beat so the error attributes to the stream that read it.
  [[nodiscard]] bool take_uncorrectable() const {
    const bool pending = pending_uncorrectable_;
    pending_uncorrectable_ = false;
    return pending;
  }

 private:
  static constexpr std::size_t kGranule = 8;

  [[nodiscard]] bool in_range(std::uint64_t addr, std::size_t len) const {
    return addr <= bytes_.size() && len <= bytes_.size() - addr;
  }

  [[nodiscard]] std::uint64_t granule_word(std::size_t g) const {
    const std::size_t base = g * kGranule;
    const std::size_t len = std::min(kGranule, bytes_.size() - base);
    std::uint64_t word = 0;
    std::memcpy(&word, bytes_.data() + base, len);
    return word;
  }

  void store_granule(std::size_t g, std::uint64_t word) const {
    const std::size_t base = g * kGranule;
    const std::size_t len = std::min(kGranule, bytes_.size() - base);
    std::memcpy(bytes_.data() + base, &word, len);
  }

  void refresh_checks(std::uint64_t addr, std::size_t len) {
    const std::size_t first = addr / kGranule;
    const std::size_t last = (addr + len - 1) / kGranule;
    for (std::size_t g = first; g <= last; ++g) {
      check_[g] = ecc::secded_encode(granule_word(g));
    }
  }

  // Scrub-on-read is logically const: it repairs storage, it does not
  // change the observable (corrected) contents. Hence the mutable store.
  void scrub_range(std::uint64_t addr, std::size_t len) const {
    const std::size_t first = addr / kGranule;
    const std::size_t last = (addr + len - 1) / kGranule;
    for (std::size_t g = first; g <= last; ++g) {
      const ecc::EccDecode decode =
          ecc::secded_decode(granule_word(g), check_[g]);
      switch (decode.state) {
        case ecc::EccState::kClean:
          break;
        case ecc::EccState::kCorrected:
          store_granule(g, decode.data);
          ++ecc_corrected_;
          break;
        case ecc::EccState::kUncorrectable:
          ++ecc_uncorrectable_;
          pending_uncorrectable_ = true;
          break;
      }
    }
  }

  mutable ZeroPages bytes_;
  mutable std::vector<std::uint8_t> check_;
  bool ecc_ = false;
  mutable std::uint64_t ecc_corrected_ = 0;
  mutable std::uint64_t ecc_uncorrectable_ = 0;
  mutable bool pending_uncorrectable_ = false;
};

}  // namespace wfasic::mem
