#include "verify/differential.hpp"

#include "core/wfa.hpp"

namespace wfasic::verify {

DifferentialReport run_differential(
    const soc::SocConfig& cfg, const std::vector<gen::SequencePair>& pairs,
    bool backtrace) {
  DifferentialReport report;
  report.pairs = pairs.size();

  soc::Soc soc(cfg);
  const bool separate = cfg.accel.num_aligners > 1;
  const soc::BatchResult result = soc.run_batch(pairs, backtrace, separate);

  core::WfaConfig sw_cfg;
  sw_cfg.pen = cfg.accel.pen;
  core::WfaAligner reference(sw_cfg);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const core::AlignResult& hw = result.alignments[i];
    if (!hw.ok) {
      ++report.hw_failures;
      report.details.push_back("pair " + std::to_string(i) +
                               ": accelerator reported Success=0");
      continue;
    }
    const core::AlignResult sw = reference.align(pairs[i].a, pairs[i].b);
    if (hw.score != sw.score) {
      ++report.score_mismatches;
      report.details.push_back(
          "pair " + std::to_string(i) + ": score hw=" +
          std::to_string(hw.score) + " sw=" + std::to_string(sw.score));
    }
    if (backtrace && hw.cigar != sw.cigar) {
      ++report.cigar_mismatches;
      report.details.push_back("pair " + std::to_string(i) +
                               ": CIGAR differs (hw " + hw.cigar.rle() +
                               " vs sw " + sw.cigar.rle() + ")");
    }
  }
  return report;
}

DifferentialReport run_differential(const soc::SocConfig& cfg,
                                    const gen::InputSetSpec& spec,
                                    bool backtrace) {
  return run_differential(cfg, gen::generate_input_set(spec), backtrace);
}

}  // namespace wfasic::verify
