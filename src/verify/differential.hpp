// Differential verification harness: the software analogue of the paper's
// §5.1 campaign (FPGA prototype runs self-checked against the WFA CPU
// implementation). Runs a batch through the simulated accelerator and
// compares every result against the software WFA — scores always, CIGARs
// when backtrace is enabled.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gen/seqgen.hpp"
#include "soc/soc.hpp"

namespace wfasic::verify {

struct DifferentialReport {
  std::size_t pairs = 0;
  std::size_t hw_failures = 0;       ///< Success=0 results
  std::size_t score_mismatches = 0;  ///< hw score != software score
  std::size_t cigar_mismatches = 0;  ///< hw CIGAR != software CIGAR
  std::vector<std::string> details;  ///< one line per discrepancy

  [[nodiscard]] bool clean() const {
    return hw_failures == 0 && score_mismatches == 0 &&
           cigar_mismatches == 0;
  }
};

/// Runs `pairs` through a fresh SoC with the given configuration and
/// cross-checks against the software WFA.
[[nodiscard]] DifferentialReport run_differential(
    const soc::SocConfig& cfg, const std::vector<gen::SequencePair>& pairs,
    bool backtrace);

/// Convenience: generate-and-verify one synthetic input set.
[[nodiscard]] DifferentialReport run_differential(
    const soc::SocConfig& cfg, const gen::InputSetSpec& spec, bool backtrace);

}  // namespace wfasic::verify
