// Cost parameters of the Sargantana-like in-order RV64 core (§3): a 7-stage
// in-order pipeline at ~1 IPC peak, 32 KB L1D + 512 KB L2.
//
// Each parameter is "cycles charged per algorithmic event assuming L1
// hits"; cache stalls are added separately by the cache simulator
// (src/cache). The derivations below count the RISC-V instructions the
// compiled WFA C code executes per event; they were then calibrated
// (EXPERIMENTS.md §calibration) so the end-to-end CPU cycle counts land in
// the regime the paper's speedups imply (~10^9 cycles for a 10K-10% pair).
#pragma once

#include <cstdint>

namespace wfasic::cpu {

/// Scalar WFA on the RV64 core.
struct ScalarCosts {
  /// Eq.-3 cell: 5 offset loads, 3 stores, ~8 max/select/branch ops plus
  /// address arithmetic — ~22 issue slots on the in-order core.
  double per_compute_cell = 22.0;
  /// extend() inner loop iteration: 2 byte loads, compare, branch, 2 incs.
  double per_extend_char = 6.0;
  /// extend() per-cell setup: i/j from offset and k, bounds checks.
  double per_extend_cell = 10.0;
  /// Per-score loop iteration: wavefront presence checks, bookkeeping.
  double per_score_iteration = 14.0;
  /// Wavefront allocation + initialisation bookkeeping per wavefront.
  double per_wavefront = 80.0;
  /// Software backtrace step (provenance recomputation per op).
  double per_bt_step = 30.0;
  /// Fixed setup/teardown per alignment: result I/O, wavefront allocator
  /// setup, per-call driver overheads (dominates 100 bp alignments).
  double per_alignment = 9000.0;
};

/// Blocked/RVV-style WFA. The SIMD unit processes several offsets per
/// vector op but pays setup moves per loop; net compute gain ~1.8x, which
/// matches the paper's short-read vector speedups where memory stalls
/// vanish. For long reads both variants touch the same data, so the cache
/// stalls (identical) dominate and the speedup collapses to ~1, as in
/// Figure 9.
struct VectorCosts {
  double per_compute_cell = 6.0;
  double per_extend_block = 8.0;   ///< 16-base packed compare + CTZ
  double per_extend_cell = 8.0;
  double per_score_iteration = 12.0;
  double per_wavefront = 70.0;
  double per_bt_step = 30.0;       ///< backtrace stays scalar
  double per_alignment = 5200.0;
};

/// CPU-side backtrace of accelerator output (§4.5). The stream is
/// processed per 64-byte cache line; costs below are per event on top of
/// the cache-simulated stalls.
struct BacktraceCosts {
  /// One 16-byte transaction probe. With a single Aligner the stream is
  /// consecutive per alignment, so boundary identification is a binary
  /// search over the counter discontinuity (O(log n) probes per
  /// alignment); with multiple Aligners every transaction is probed.
  double per_block_scanned = 6.0;
  /// Separating one transaction into its per-alignment buffer during the
  /// multi-Aligner method: decode id + counter, look up the destination
  /// buffer, move the 10-byte fragment into its counter slot. Driver-style
  /// scalar code, heavily back-pressured by the in-order core.
  double per_block_copied = 110.0;
  /// One origin-decode step of the path walk (bit extraction, address
  /// computation into the gappy 10+6 byte layout).
  double per_path_step = 22.0;
  /// One character of match insertion while traversing the sequences.
  double per_match_char = 4.0;
  /// Fixed driver overhead per alignment: result-record decode, boundary
  /// set-up, buffer management (user/kernel crossings amortised).
  double per_alignment = 9000.0;
};

}  // namespace wfasic::cpu
