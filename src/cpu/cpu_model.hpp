// Timing model of the WFA software baselines on the SoC's RISC-V core.
//
// The model *executes the real algorithm* (core::WfaAligner) and charges
// cycles from two sources:
//   1. per-event instruction costs (cpu/cost_model.hpp) driven by the
//      aligner's instrumentation probe, and
//   2. memory stalls from replaying the aligner's memory trace through the
//      SoC cache hierarchy (32 KB L1D, 512 KB L2).
// This mirrors how the paper measures its baseline: the same WFA C code
// [14] running on the in-order Sargantana core.
#pragma once

#include <cstdint>
#include <string_view>

#include "cache/cache.hpp"
#include "core/align_result.hpp"
#include "core/wfa.hpp"
#include "cpu/cost_model.hpp"

namespace wfasic::cpu {

/// Cycle breakdown of one modelled CPU run.
struct CpuRunStats {
  std::uint64_t op_cycles = 0;     ///< instruction-cost component
  std::uint64_t stall_cycles = 0;  ///< cache-stall component
  [[nodiscard]] std::uint64_t total() const { return op_cycles + stall_cycles; }

  core::WfaProbe probe;            ///< counters of the underlying run
  cache::CacheStats l1;
  cache::CacheStats l2;
};

/// Event counters produced by the driver's CPU backtrace implementations
/// (drv/backtrace_cpu.*), consumed by backtrace_cycles().
struct BtCpuCounters {
  std::uint64_t alignments = 0;
  std::uint64_t blocks_scanned = 0;  ///< 16-byte transactions touched
  std::uint64_t blocks_copied = 0;   ///< data-separation copies (multi-Aligner)
  std::uint64_t path_steps = 0;      ///< origin-decode steps
  std::uint64_t match_chars = 0;     ///< match-insertion characters
};

class CpuModel {
 public:
  struct Config {
    ScalarCosts scalar;
    VectorCosts vector;
    BacktraceCosts bt;
  };

  explicit CpuModel(Config cfg = {}) : cfg_(cfg) {}

  /// Runs the scalar or blocked WFA on (a, b) and returns the modelled
  /// cycle count. A fresh (cold) cache hierarchy is used per call, which
  /// matches the paper's batch processing where consecutive long pairs
  /// evict each other anyway.
  struct RunResult {
    core::AlignResult align;
    CpuRunStats stats;
  };
  [[nodiscard]] RunResult run_wfa(std::string_view a, std::string_view b,
                                  const Penalties& pen, core::ExtendMode mode,
                                  core::Traceback traceback) const;

  /// Cycles for the CPU-side backtrace of accelerator output: instruction
  /// costs from the counters plus a streaming-memory stall estimate
  /// (`bt_stream_bytes` of output data read through the hierarchy; copies
  /// are charged read+write).
  [[nodiscard]] std::uint64_t backtrace_cycles(
      const BtCpuCounters& counters) const;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Config& config() { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace wfasic::cpu
