#include "cpu/cpu_model.hpp"

#include <cmath>

namespace wfasic::cpu {

CpuModel::RunResult CpuModel::run_wfa(std::string_view a, std::string_view b,
                                      const Penalties& pen,
                                      core::ExtendMode mode,
                                      core::Traceback traceback) const {
  core::WfaConfig wfa_cfg;
  wfa_cfg.pen = pen;
  wfa_cfg.traceback = traceback;
  wfa_cfg.extend = mode;
  core::WfaAligner aligner(wfa_cfg);

  cache::Hierarchy hierarchy = cache::Hierarchy::make_soc();
  std::uint64_t stalls = 0;
  aligner.probe().mem_trace = [&](std::uint64_t addr, std::uint32_t size,
                                  bool is_write) {
    stalls += hierarchy.access(addr, size, is_write);
  };

  RunResult out;
  // Warm-up pass: the paper measures batches of alignments in steady
  // state, so compulsory misses of the sequences/allocator region are
  // amortised. Replay the trace once to warm the hierarchy (the aligner's
  // synthetic addresses are deterministic per call), then measure.
  (void)aligner.align(a, b);
  stalls = 0;
  aligner.probe().reset();
  hierarchy.reset_stats();

  out.align = aligner.align(a, b);
  const core::WfaProbe& probe = aligner.probe();

  double ops = 0;
  if (mode == core::ExtendMode::kScalar) {
    const ScalarCosts& c = cfg_.scalar;
    ops += c.per_compute_cell * static_cast<double>(probe.cells_computed);
    ops += c.per_extend_char * static_cast<double>(probe.chars_compared);
    ops += c.per_extend_cell * static_cast<double>(probe.extend_cells);
    ops += c.per_score_iteration *
           static_cast<double>(probe.score_iterations);
    ops += c.per_wavefront * static_cast<double>(probe.wavefronts_computed);
    ops += c.per_bt_step * static_cast<double>(probe.bt_steps);
    ops += c.per_alignment;
  } else {
    const VectorCosts& c = cfg_.vector;
    ops += c.per_compute_cell * static_cast<double>(probe.cells_computed);
    ops += c.per_extend_block * static_cast<double>(probe.blocks_compared);
    ops += c.per_extend_cell * static_cast<double>(probe.extend_cells);
    ops += c.per_score_iteration *
           static_cast<double>(probe.score_iterations);
    ops += c.per_wavefront * static_cast<double>(probe.wavefronts_computed);
    ops += c.per_bt_step * static_cast<double>(probe.bt_steps);
    ops += c.per_alignment;
  }

  out.stats.op_cycles = static_cast<std::uint64_t>(std::llround(ops));
  out.stats.stall_cycles = stalls;
  out.stats.probe = probe;
  out.stats.l1 = hierarchy.l1().stats();
  out.stats.l2 = hierarchy.l2().stats();
  return out;
}

std::uint64_t CpuModel::backtrace_cycles(const BtCpuCounters& c) const {
  const BacktraceCosts& k = cfg_.bt;
  double ops = 0;
  ops += k.per_block_scanned * static_cast<double>(c.blocks_scanned);
  ops += k.per_block_copied * static_cast<double>(c.blocks_copied);
  ops += k.per_path_step * static_cast<double>(c.path_steps);
  ops += k.per_match_char * static_cast<double>(c.match_chars);
  ops += k.per_alignment * static_cast<double>(c.alignments);

  // Memory stalls: replay the access pattern through a cold hierarchy.
  // Boundary scanning streams the output buffer forward (one 16-byte
  // transaction per probe); copies read the source and write the
  // destination; the path walk strides backwards across the stream.
  cache::Hierarchy hierarchy = cache::Hierarchy::make_soc();
  std::uint64_t stalls = 0;
  const std::uint64_t stream_base = 0x4000'0000ULL;
  const std::uint64_t copy_base = 0x6000'0000ULL;
  for (std::uint64_t blk = 0; blk < c.blocks_scanned; ++blk) {
    stalls += hierarchy.access(stream_base + blk * 16, 16, false);
  }
  for (std::uint64_t blk = 0; blk < c.blocks_copied; ++blk) {
    stalls += hierarchy.access(stream_base + blk * 16, 16, false);
    stalls += hierarchy.access(copy_base + blk * 16, 16, true);
  }
  if (c.path_steps > 0) {
    const std::uint64_t stream_bytes = c.blocks_scanned * 16;
    const std::uint64_t stride =
        c.path_steps > 0 ? std::max<std::uint64_t>(stream_bytes /
                                                       (c.path_steps + 1),
                                                   1)
                         : 1;
    for (std::uint64_t step = 0; step < c.path_steps; ++step) {
      const std::uint64_t pos =
          stream_bytes - std::min(stream_bytes, (step + 1) * stride);
      stalls += hierarchy.access(stream_base + pos, 16, false);
    }
  }
  return static_cast<std::uint64_t>(std::llround(ops)) + stalls;
}

}  // namespace wfasic::cpu
