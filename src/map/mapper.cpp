#include "map/mapper.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/swg_semiglobal.hpp"

namespace wfasic::map {

ReadMapper::ReadMapper(std::string reference, MapperConfig cfg)
    : reference_(std::move(reference)),
      cfg_(cfg),
      index_(reference_, cfg.k) {
  WFASIC_REQUIRE(cfg_.seed_stride >= 1, "ReadMapper: zero seed stride");
  WFASIC_REQUIRE(cfg_.diagonal_bucket >= 1, "ReadMapper: zero bucket");
}

MapPlan ReadMapper::plan(std::string_view read) const {
  MapPlan plan;
  if (read.size() < cfg_.k) return plan;

  // --- Seeding: sample k-mers along the read and vote for the implied
  // alignment start diagonal (hit position - read offset), bucketised to
  // tolerate indels between seeds.
  std::unordered_map<std::size_t, std::size_t> votes;  // bucket -> count
  for (std::size_t off = 0; off + cfg_.k <= read.size();
       off += cfg_.seed_stride) {
    for (std::uint32_t hit : index_.lookup(read.substr(off, cfg_.k))) {
      ++plan.seed_hits;
      if (hit < off) continue;  // read would start before the reference
      const std::size_t start = hit - off;
      ++votes[start / cfg_.diagonal_bucket];
    }
  }
  if (votes.empty()) return plan;

  // --- Candidate selection: the most-voted buckets become extension jobs.
  std::vector<std::pair<std::size_t, std::size_t>> ranked(votes.begin(),
                                                          votes.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    return x.second != y.second ? x.second > y.second : x.first < y.first;
  });
  for (std::size_t rank = 0;
       rank < std::min<std::size_t>(ranked.size(), cfg_.max_candidates);
       ++rank) {
    if (ranked[rank].second < cfg_.min_votes) break;
    const std::size_t start_guess =
        ranked[rank].first * cfg_.diagonal_bucket;
    const std::size_t begin =
        start_guess > cfg_.window_slack ? start_guess - cfg_.window_slack : 0;
    const std::size_t end = std::min(
        reference_.size(), start_guess + read.size() + cfg_.window_slack);
    if (end <= begin) continue;
    plan.jobs.push_back(ExtensionJob{begin, end, ranked[rank].second});
  }
  return plan;
}

Mapping ReadMapper::finish(
    const MapPlan& plan,
    std::span<const core::SemiglobalResult> extensions) const {
  WFASIC_REQUIRE(extensions.size() == plan.jobs.size(),
                 "ReadMapper::finish: one extension per planned job");
  Mapping result;
  result.seed_hits = plan.seed_hits;
  score_t best = kScoreInf;
  for (std::size_t idx = 0; idx < plan.jobs.size(); ++idx) {
    const ExtensionJob& job = plan.jobs[idx];
    const core::SemiglobalResult& ext = extensions[idx];
    ++result.candidates_extended;
    if (ext.align.score < best) {
      best = ext.align.score;
      result.mapped = true;
      result.score = ext.align.score;
      result.position = job.window_begin + ext.text_begin;
      result.ref_end = job.window_begin + ext.text_end;
      result.cigar = ext.align.cigar;
    }
  }
  return result;
}

Mapping ReadMapper::map(std::string_view read) const {
  // --- Seed extension (the WFAsic step): semiglobal gap-affine alignment
  // of the read inside each candidate window; keep the best score. The
  // inline form of plan() + extensions + finish().
  const MapPlan mapping_plan = plan(read);
  std::vector<core::SemiglobalResult> extensions;
  extensions.reserve(mapping_plan.jobs.size());
  for (const ExtensionJob& job : mapping_plan.jobs) {
    const std::string_view window(reference_.data() + job.window_begin,
                                  job.window_end - job.window_begin);
    extensions.push_back(core::align_swg_semiglobal(
        read, window, cfg_.pen, core::Traceback::kEnabled));
  }
  return finish(mapping_plan, extensions);
}

}  // namespace wfasic::map
