// K-mer hash index over a reference sequence: the seeding substrate of a
// read mapper (§2.1: "the Seeding step filters the possible locations of
// the query sequences in the reference genome").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace wfasic::map {

/// Packs a k-mer (k <= 31, A/C/G/T only) into a 64-bit code; returns false
/// if the window contains an invalid base.
[[nodiscard]] bool pack_kmer(std::string_view window, std::uint64_t& code);

class KmerIndex {
 public:
  /// Indexes every k-mer position of `reference`. K-mers containing
  /// non-ACGT characters are skipped. Positions of k-mers occurring more
  /// than `max_occurrences` times are dropped (repeat masking), as real
  /// mappers do to keep seeding selective.
  KmerIndex(std::string_view reference, unsigned k,
            std::size_t max_occurrences = 64);

  [[nodiscard]] unsigned k() const { return k_; }
  [[nodiscard]] std::size_t reference_length() const { return ref_len_; }
  [[nodiscard]] std::size_t distinct_kmers() const { return index_.size(); }
  [[nodiscard]] std::size_t masked_kmers() const { return masked_; }

  /// Reference positions where this exact k-mer occurs (empty if unknown
  /// or masked).
  [[nodiscard]] std::span<const std::uint32_t> lookup(
      std::string_view kmer) const;

 private:
  unsigned k_;
  std::size_t ref_len_;
  std::size_t masked_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

}  // namespace wfasic::map
