#include "map/kmer_index.hpp"

#include "common/assert.hpp"
#include "common/dna.hpp"

namespace wfasic::map {

bool pack_kmer(std::string_view window, std::uint64_t& code) {
  WFASIC_REQUIRE(window.size() <= 31, "pack_kmer: k must be <= 31");
  std::uint64_t packed = 0;
  for (char c : window) {
    const std::uint8_t base = encode_base(c);
    if (base == 0xff) return false;
    packed = (packed << 2) | base;
  }
  // Set a sentinel bit above the payload so different k never collide.
  code = packed | (1ULL << (2 * window.size()));
  return true;
}

KmerIndex::KmerIndex(std::string_view reference, unsigned k,
                     std::size_t max_occurrences)
    : k_(k), ref_len_(reference.size()) {
  WFASIC_REQUIRE(k >= 4 && k <= 31, "KmerIndex: k must be in [4, 31]");
  if (reference.size() < k) return;
  for (std::size_t pos = 0; pos + k <= reference.size(); ++pos) {
    std::uint64_t code = 0;
    if (!pack_kmer(reference.substr(pos, k), code)) continue;
    index_[code].push_back(static_cast<std::uint32_t>(pos));
  }
  // Repeat masking: drop over-abundant k-mers entirely.
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.size() > max_occurrences) {
      it = index_.erase(it);
      ++masked_;
    } else {
      ++it;
    }
  }
}

std::span<const std::uint32_t> KmerIndex::lookup(std::string_view kmer) const {
  WFASIC_REQUIRE(kmer.size() == k_, "KmerIndex::lookup: wrong k-mer length");
  std::uint64_t code = 0;
  if (!pack_kmer(kmer, code)) return {};
  const auto it = index_.find(code);
  if (it == index_.end()) return {};
  return {it->second.data(), it->second.size()};
}

}  // namespace wfasic::map
