// A compact seed-and-extend read mapper: the application the paper's
// introduction motivates (§2.1). Seeding uses the k-mer index; candidate
// locations are ranked by diagonal voting; seed extension — the step
// WFAsic accelerates — runs semiglobal gap-affine alignment of the read
// inside the candidate reference window.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/cigar.hpp"
#include "common/types.hpp"
#include "core/swg_semiglobal.hpp"
#include "map/kmer_index.hpp"

namespace wfasic::map {

struct MapperConfig {
  unsigned k = 15;               ///< seed length
  unsigned seed_stride = 5;      ///< sample a seed every N read positions
  unsigned max_candidates = 4;   ///< candidate windows to extend
  std::size_t window_slack = 32; ///< extra reference bases around a window
  std::size_t diagonal_bucket = 16;  ///< vote granularity (indel tolerance)
  std::size_t min_votes = 2;     ///< seeds agreeing before extension
  Penalties pen = kDefaultPenalties;
};

/// One mapped read.
struct Mapping {
  bool mapped = false;
  std::size_t position = 0;  ///< reference offset of the alignment start
  std::size_t ref_end = 0;   ///< one past the last reference base consumed
  score_t score = 0;         ///< gap-affine distance of the best extension
  Cigar cigar;               ///< read vs reference[position, ref_end)
  std::size_t candidates_extended = 0;
  std::size_t seed_hits = 0;
};

/// One candidate reference window awaiting seed extension — the step
/// WFAsic accelerates. Windows come out of plan() ranked best-first.
struct ExtensionJob {
  std::size_t window_begin = 0;  ///< reference offset of the window start
  std::size_t window_end = 0;    ///< one past the window end
  std::size_t votes = 0;         ///< diagonal votes behind this candidate
};

/// The seeding half of map(): candidate windows without their extensions,
/// so a host can batch the extension jobs of many reads and submit them
/// to the alignment engine asynchronously instead of extending inline.
struct MapPlan {
  std::vector<ExtensionJob> jobs;
  std::size_t seed_hits = 0;
};

class ReadMapper {
 public:
  ReadMapper(std::string reference, MapperConfig cfg = {});

  /// Maps one read; unmapped when no candidate gathers enough seed votes.
  /// Equivalent to plan() + inline semiglobal extension + finish().
  [[nodiscard]] Mapping map(std::string_view read) const;

  /// Seeding + candidate selection only; extension deferred to the caller.
  [[nodiscard]] MapPlan plan(std::string_view read) const;
  /// Folds extension results (one per plan job, same order — e.g. decoded
  /// from an engine completion) into the final Mapping.
  [[nodiscard]] Mapping finish(
      const MapPlan& plan,
      std::span<const core::SemiglobalResult> extensions) const;

  [[nodiscard]] const KmerIndex& index() const { return index_; }
  [[nodiscard]] const std::string& reference() const { return reference_; }
  [[nodiscard]] const MapperConfig& config() const { return cfg_; }

 private:
  std::string reference_;
  MapperConfig cfg_;
  KmerIndex index_;
};

}  // namespace wfasic::map
