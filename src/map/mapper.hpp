// A compact seed-and-extend read mapper: the application the paper's
// introduction motivates (§2.1). Seeding uses the k-mer index; candidate
// locations are ranked by diagonal voting; seed extension — the step
// WFAsic accelerates — runs semiglobal gap-affine alignment of the read
// inside the candidate reference window.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cigar.hpp"
#include "common/types.hpp"
#include "map/kmer_index.hpp"

namespace wfasic::map {

struct MapperConfig {
  unsigned k = 15;               ///< seed length
  unsigned seed_stride = 5;      ///< sample a seed every N read positions
  unsigned max_candidates = 4;   ///< candidate windows to extend
  std::size_t window_slack = 32; ///< extra reference bases around a window
  std::size_t diagonal_bucket = 16;  ///< vote granularity (indel tolerance)
  std::size_t min_votes = 2;     ///< seeds agreeing before extension
  Penalties pen = kDefaultPenalties;
};

/// One mapped read.
struct Mapping {
  bool mapped = false;
  std::size_t position = 0;  ///< reference offset of the alignment start
  std::size_t ref_end = 0;   ///< one past the last reference base consumed
  score_t score = 0;         ///< gap-affine distance of the best extension
  Cigar cigar;               ///< read vs reference[position, ref_end)
  std::size_t candidates_extended = 0;
  std::size_t seed_hits = 0;
};

class ReadMapper {
 public:
  ReadMapper(std::string reference, MapperConfig cfg = {});

  /// Maps one read; unmapped when no candidate gathers enough seed votes.
  [[nodiscard]] Mapping map(std::string_view read) const;

  [[nodiscard]] const KmerIndex& index() const { return index_; }
  [[nodiscard]] const std::string& reference() const { return reference_; }
  [[nodiscard]] const MapperConfig& config() const { return cfg_; }

 private:
  std::string reference_;
  MapperConfig cfg_;
  KmerIndex index_;
};

}  // namespace wfasic::map
