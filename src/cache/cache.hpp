// Set-associative cache simulator with LRU replacement, write-allocate /
// write-back. Models the SoC's data-side hierarchy (32 KB L1D + 512 KB L2,
// §3) to charge the CPU baseline realistic memory stalls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::cache {

struct CacheConfig {
  std::string name = "cache";
  std::size_t size_bytes = 32 * 1024;
  std::size_t ways = 8;
  std::size_t line_bytes = 64;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg) : cfg_(cfg) {
    WFASIC_REQUIRE(cfg.line_bytes > 0 && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
                   "Cache: line size must be a power of two");
    WFASIC_REQUIRE(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0,
                   "Cache: size must be a multiple of ways*line");
    num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
    WFASIC_REQUIRE((num_sets_ & (num_sets_ - 1)) == 0,
                   "Cache: set count must be a power of two");
    lines_.assign(num_sets_ * cfg.ways, Line{});
  }

  /// One line-sized probe. Returns true on hit; on miss the line is filled
  /// (evicting LRU; dirty evictions count as writebacks).
  bool access(std::uint64_t addr, bool is_write) {
    ++stats_.accesses;
    const std::uint64_t line_addr = addr / cfg_.line_bytes;
    const std::size_t set = line_addr & (num_sets_ - 1);
    const std::uint64_t tag = line_addr >> log2(num_sets_);
    Line* base = &lines_[set * cfg_.ways];
    Line* victim = base;
    for (std::size_t way = 0; way < cfg_.ways; ++way) {
      Line& line = base[way];
      if (line.valid && line.tag == tag) {
        ++stats_.hits;
        line.lru = ++lru_clock_;
        line.dirty = line.dirty || is_write;
        return true;
      }
      if (!line.valid) {
        victim = &line;
      } else if (victim->valid && line.lru < victim->lru) {
        victim = &line;
      }
    }
    ++stats_.misses;
    if (victim->valid && victim->dirty) ++stats_.writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    return false;
  }

  void flush() {
    for (Line& line : lines_) line = Line{};
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  static std::size_t log2(std::size_t v) {
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < v) ++bits;
    return bits;
  }

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Line> lines_;
  CacheStats stats_;
  std::uint64_t lru_clock_ = 0;
};

/// Two-level data hierarchy: access() returns the stall cycles beyond an
/// L1 hit (which the CPU model folds into its base cost).
class Hierarchy {
 public:
  struct Latencies {
    unsigned l2_hit = 11;      ///< extra cycles on L1 miss / L2 hit
    unsigned memory = 90;      ///< extra cycles on L2 miss
    unsigned writeback = 10;   ///< cost of a dirty eviction reaching DRAM
  };

  Hierarchy(CacheConfig l1, CacheConfig l2) : l1_(l1), l2_(l2) {}
  Hierarchy(CacheConfig l1, CacheConfig l2, Latencies lat)
      : l1_(l1), l2_(l2), lat_(lat) {}

  /// Default SoC hierarchy: 32 KB/8-way L1D, 512 KB/8-way L2, 64 B lines.
  static Hierarchy make_soc() {
    return Hierarchy({"l1d", 32 * 1024, 8, 64}, {"l2", 512 * 1024, 8, 64});
  }

  /// Probes an access of `size` bytes at `addr`; touches every line the
  /// access spans. Returns total stall cycles.
  std::uint64_t access(std::uint64_t addr, std::uint32_t size, bool is_write) {
    std::uint64_t stall = 0;
    const std::size_t line = l1_.config().line_bytes;
    const std::uint64_t first = addr / line;
    const std::uint64_t last = (addr + (size == 0 ? 0 : size - 1)) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
      const std::uint64_t line_addr = l * line;
      if (l1_.access(line_addr, is_write)) continue;
      const std::uint64_t wb_before = l2_.stats().writebacks;
      if (l2_.access(line_addr, is_write)) {
        stall += lat_.l2_hit;
      } else {
        stall += lat_.l2_hit + lat_.memory;
      }
      stall += (l2_.stats().writebacks - wb_before) * lat_.writeback;
    }
    return stall;
  }

  void flush() {
    l1_.flush();
    l2_.flush();
  }
  void reset_stats() {
    l1_.reset_stats();
    l2_.reset_stats();
  }

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] const Latencies& latencies() const { return lat_; }

 private:
  Cache l1_;
  Cache l2_;
  Latencies lat_;
};

}  // namespace wfasic::cache
