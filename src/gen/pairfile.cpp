#include "gen/pairfile.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/assert.hpp"

namespace wfasic::gen {

void write_pairs(std::ostream& out, const std::vector<SequencePair>& pairs) {
  for (const SequencePair& pair : pairs) {
    out << '>' << pair.a << '\n' << '<' << pair.b << '\n';
  }
}

std::vector<SequencePair> read_pairs(std::istream& in) {
  std::vector<SequencePair> pairs;
  std::string line;
  std::string pending_pattern;
  bool have_pattern = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      WFASIC_REQUIRE(!have_pattern, "read_pairs: two '>' lines in a row");
      pending_pattern = line.substr(1);
      have_pattern = true;
    } else if (line[0] == '<') {
      WFASIC_REQUIRE(have_pattern, "read_pairs: '<' line without '>'");
      SequencePair pair;
      pair.id = static_cast<std::uint32_t>(pairs.size());
      pair.a = std::move(pending_pattern);
      pair.b = line.substr(1);
      pairs.push_back(std::move(pair));
      have_pattern = false;
    } else {
      WFASIC_UNREACHABLE("read_pairs: line must start with '>' or '<'");
    }
  }
  WFASIC_REQUIRE(!have_pattern, "read_pairs: dangling '>' line at EOF");
  return pairs;
}

void save_pairs(const std::string& path,
                const std::vector<SequencePair>& pairs) {
  std::ofstream out(path);
  WFASIC_REQUIRE(out.good(), "save_pairs: cannot open file for writing");
  write_pairs(out, pairs);
}

std::vector<SequencePair> load_pairs(const std::string& path) {
  std::ifstream in(path);
  WFASIC_REQUIRE(in.good(), "load_pairs: cannot open file");
  return read_pairs(in);
}

}  // namespace wfasic::gen
