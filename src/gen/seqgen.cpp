#include "gen/seqgen.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/dna.hpp"

namespace wfasic::gen {

std::string InputSetSpec::name() const {
  std::string len_str;
  if (length % 1000 == 0 && length >= 1000) {
    len_str = std::to_string(length / 1000) + "K";
  } else {
    len_str = std::to_string(length);
  }
  const int pct = static_cast<int>(std::lround(error_rate * 100));
  return len_str + "-" + std::to_string(pct) + "%";
}

std::string random_sequence(Prng& prng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) c = kBaseChars[prng.next_below(4)];
  return seq;
}

std::string mutate_sequence(Prng& prng, const std::string& seq,
                            double error_rate) {
  WFASIC_REQUIRE(error_rate >= 0.0 && error_rate <= 1.0,
                 "mutate_sequence: error_rate out of [0,1]");
  std::string out = seq;
  const auto num_errors = static_cast<std::size_t>(
      std::llround(static_cast<double>(seq.size()) * error_rate));
  for (std::size_t err = 0; err < num_errors; ++err) {
    const std::uint64_t kind = prng.next_below(3);
    switch (kind) {
      case 0: {  // mismatch: replace with a different base
        if (out.empty()) break;
        const std::size_t pos = prng.next_below(out.size());
        const std::uint8_t old_code = encode_base(out[pos]);
        const std::uint8_t new_code =
            static_cast<std::uint8_t>((old_code + 1 + prng.next_below(3)) & 3);
        out[pos] = decode_base(new_code);
        break;
      }
      case 1: {  // insertion of a random base
        const std::size_t pos = prng.next_below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   kBaseChars[prng.next_below(4)]);
        break;
      }
      case 2: {  // deletion
        if (out.empty()) break;
        const std::size_t pos = prng.next_below(out.size());
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      }
      default:
        WFASIC_UNREACHABLE("bad mutation kind");
    }
  }
  return out;
}

std::vector<SequencePair> generate_input_set(const InputSetSpec& spec) {
  Prng prng(spec.seed);
  std::vector<SequencePair> pairs;
  pairs.reserve(spec.num_pairs);
  for (std::size_t idx = 0; idx < spec.num_pairs; ++idx) {
    SequencePair pair;
    pair.id = static_cast<std::uint32_t>(idx);
    pair.a = random_sequence(prng, spec.length);
    pair.b = mutate_sequence(prng, pair.a, spec.error_rate);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

std::vector<InputSetSpec> paper_input_sets(std::size_t pairs_short,
                                           std::size_t pairs_medium,
                                           std::size_t pairs_long) {
  return {
      {100, 0.05, pairs_short, 1001},  {100, 0.10, pairs_short, 1002},
      {1000, 0.05, pairs_medium, 1003}, {1000, 0.10, pairs_medium, 1004},
      {10000, 0.05, pairs_long, 1005}, {10000, 0.10, pairs_long, 1006},
  };
}

}  // namespace wfasic::gen
