// Synthetic read-pair generation following the paper's methodology (§5.3):
// "We generate synthetic input sets with random mismatches, insertions and
// deletions ... the sequence errors follow a uniform and random
// distribution."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace wfasic::gen {

/// One pair to align: `a` is the pattern/query, `b` the text/reference.
struct SequencePair {
  std::uint32_t id = 0;
  std::string a;
  std::string b;
};

/// Parameters of one synthetic input set (a row of Table 1).
struct InputSetSpec {
  std::size_t length = 100;   ///< nominal read length (bases)
  double error_rate = 0.05;   ///< nominal sequencing error rate
  std::size_t num_pairs = 1;
  std::uint64_t seed = 42;

  [[nodiscard]] std::string name() const;
};

/// Uniform random A/C/G/T sequence of the given length.
[[nodiscard]] std::string random_sequence(Prng& prng, std::size_t length);

/// Applies round(len * error_rate) errors to `seq`, each uniformly chosen
/// among mismatch / 1-base insertion / 1-base deletion at a uniform random
/// position, and returns the mutated copy.
[[nodiscard]] std::string mutate_sequence(Prng& prng, const std::string& seq,
                                          double error_rate);

/// Generates a full input set: pair i has `a` = a fresh random sequence and
/// `b` = a mutated copy of it. Deterministic in spec.seed.
[[nodiscard]] std::vector<SequencePair> generate_input_set(
    const InputSetSpec& spec);

/// The six evaluation input sets of the paper (Table 1 / Figures 9-11):
/// 100/1K/10K bases at 5% and 10% error, in the paper's order.
[[nodiscard]] std::vector<InputSetSpec> paper_input_sets(
    std::size_t pairs_short, std::size_t pairs_medium, std::size_t pairs_long);

}  // namespace wfasic::gen
