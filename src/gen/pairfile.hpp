// Simple text format for sequence-pair datasets, compatible with the WFA
// CPU implementation's .seq convention: one pair per two lines,
//   >PATTERN
//   <TEXT
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gen/seqgen.hpp"

namespace wfasic::gen {

/// Serialises pairs to the >/< two-line format.
void write_pairs(std::ostream& out, const std::vector<SequencePair>& pairs);

/// Parses the >/< two-line format; ids are assigned sequentially.
/// Aborts on malformed input (missing marker, dangling pattern line).
[[nodiscard]] std::vector<SequencePair> read_pairs(std::istream& in);

/// Convenience file wrappers.
void save_pairs(const std::string& path, const std::vector<SequencePair>& pairs);
[[nodiscard]] std::vector<SequencePair> load_pairs(const std::string& path);

}  // namespace wfasic::gen
