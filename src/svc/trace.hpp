// Request-scoped causal tracing (docs/OBSERVABILITY.md §3).
//
// Every AlignService request carries a trace id (its RequestId) and every
// lifecycle transition emits one typed event in *modeled* time: admission
// verdicts, queue wait, WFQ dispatch into a shard, attempt launches
// (primary / hedge / retry / software degrade), device runs correlated
// with the per-run PMU deltas the completion carries, cancellations,
// preemption park/resume, checkpoint/restore costs, and the terminal
// completion / deadline-miss / shed. Because timestamps are service-clock
// cycles and every emission happens *after* the decision it describes,
// recording is zero-perturbation by construction: simulated cycles, PMU
// counters and results are bit-identical with the recorder on or off
// (enforced by tests/test_tracing.cpp across the kernel×macro matrix).
//
// The FlightRecorder is the always-on consumer: a fixed-capacity ring of
// POD events, preallocated at construction, zero-allocation on the hot
// path (recording a full ring overwrites the oldest entry). It is meant
// to be dumped on anomaly — deadline miss, quarantine, watchdog abort,
// uncorrectable ECC — so the recent causal history of a failure is
// available without a rerun. An opt-in keep-all mode retains the full
// event stream for offline analysis (bench/service_latency --trace).
//
// Serialization, validation and causal-chain explanation live in
// svc/trace_io.hpp; the wfasic-trace CLI wraps them.
#pragma once

#include <cstdint>
#include <vector>

namespace wfasic::svc {

/// Every request/shard lifecycle transition the service can emit. The
/// names (trace_event_kind_name) are the stable wire format of the dump;
/// append new kinds at the end.
enum class TraceEventKind : std::uint8_t {
  // Admission (id = request).
  kAdmit,          ///< accepted into a lane queue; aux0 = absolute deadline
  kWouldBlock,     ///< backpressured (id = 0); aux0 = queue depth
  kRejected,       ///< policy rejection, kRejectNew (id = 0)
  kShedAdmission,  ///< dead on arrival: deadline already past
  // Scheduling (id = request for kQueueWait, shard otherwise).
  kQueueWait,      ///< span: admission → dispatch; aux0 = shard id
  kDispatch,       ///< WFQ picked the lane, shard formed; aux0 = requests
  kAttemptLaunch,  ///< engine submission; aux0 = attempt index,
                   ///< aux1 = AttemptFlavor
  kHedgeLaunch,    ///< straggler hedge placed (device = where)
  kRetry,          ///< relaunch after a failed attempt; aux0 = attempts so far
  kSwDegrade,      ///< routed to the software backend (policy or terminal)
  // In-flight events (id = shard).
  kCancel,         ///< cancel attempt on an engine job; aux0 = 1 if it stuck
  kPreemptPark,    ///< checkpoint-evicted for urgent work
  kPreemptResume,  ///< parked shard re-dispatched (device = new home)
  kAttemptFailed,  ///< non-completed engine outcome; aux0 = drv::RunOutcome
  kDeviceRun,      ///< span: winning run's device busy time; aux0 =
                   ///< PMU wavefront steps, aux1 = PMU DMA beats read
  kCheckpoint,     ///< snapshots taken during the winning run; aux0 = count
  kRestore,        ///< restores applied; aux0 = count, aux1 = recomputed cyc
  kHedgeWin,       ///< a hedge/retry attempt resolved the shard
  kHedgeLose,      ///< losing attempt surfaced late; duplicate suppressed
  // Terminal (id = request; exactly one per admitted or shed request).
  kComplete,       ///< kOk; aux0 = latency in cycles
  kDeadlineMiss,   ///< aligned past the deadline; aux0 = lateness
  kShed,           ///< dropped without a result
};

/// AttemptLaunch aux1: why this engine submission exists.
enum class AttemptFlavor : std::uint8_t {
  kPrimary = 0,
  kHedge = 1,
  kRetryAttempt = 2,
  kSoftware = 3,
};

/// Stable wire name of a kind (dump format + Perfetto event names).
/// Returns nullptr for out-of-range values (the parser's validity check).
[[nodiscard]] inline const char* trace_event_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kWouldBlock: return "would-block";
    case TraceEventKind::kRejected: return "rejected";
    case TraceEventKind::kShedAdmission: return "shed-admission";
    case TraceEventKind::kQueueWait: return "queue-wait";
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kAttemptLaunch: return "attempt-launch";
    case TraceEventKind::kHedgeLaunch: return "hedge-launch";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kSwDegrade: return "sw-degrade";
    case TraceEventKind::kCancel: return "cancel";
    case TraceEventKind::kPreemptPark: return "preempt-park";
    case TraceEventKind::kPreemptResume: return "preempt-resume";
    case TraceEventKind::kAttemptFailed: return "attempt-failed";
    case TraceEventKind::kDeviceRun: return "device-run";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kRestore: return "restore";
    case TraceEventKind::kHedgeWin: return "hedge-win";
    case TraceEventKind::kHedgeLose: return "hedge-lose";
    case TraceEventKind::kComplete: return "complete";
    case TraceEventKind::kDeadlineMiss: return "deadline-miss";
    case TraceEventKind::kShed: return "shed";
  }
  return nullptr;
}

/// One trace event. Fixed-size POD — no strings, no heap — so the flight
/// recorder's ring stores it without allocating. `id` is a RequestId for
/// request-scoped kinds and a shard id for shard-scoped kinds (the kind
/// comments above say which); kQueueWait carries both (id = request,
/// aux0 = shard), which is what lets the explainer join a request to the
/// shard events that decided its fate.
struct RequestTraceEvent {
  /// Sentinel device: "no device involved". The software backend is
  /// engine.num_devices(), passed through as-is.
  static constexpr std::uint32_t kNoDevice = ~std::uint32_t{0};

  std::uint64_t ts = 0;   ///< service clock (modeled cycles)
  std::uint64_t dur = 0;  ///< span kinds only (kQueueWait, kDeviceRun)
  std::uint64_t id = 0;   ///< request id or shard id (kind-dependent)
  std::uint64_t aux0 = 0;
  std::uint64_t aux1 = 0;
  std::uint32_t lane = 0;
  std::uint32_t device = kNoDevice;
  TraceEventKind kind = TraceEventKind::kAdmit;

  bool operator==(const RequestTraceEvent&) const = default;
};

/// Why the recorder flagged the run as anomalous (the dump triggers).
enum class AnomalyKind : std::uint8_t {
  kNone = 0,
  kDeadlineMiss,
  kShed,
  kAttemptFailure,  ///< watchdog abort / DMA error / uncorrectable ECC
  kQuarantine,      ///< a device's circuit breaker tripped
};

[[nodiscard]] inline const char* anomaly_kind_name(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kNone: return "none";
    case AnomalyKind::kDeadlineMiss: return "deadline-miss";
    case AnomalyKind::kShed: return "shed";
    case AnomalyKind::kAttemptFailure: return "attempt-failure";
    case AnomalyKind::kQuarantine: return "quarantine";
  }
  return "?";
}

/// Always-on bounded event ring. The capacity is allocated once at
/// construction; record() writes into the ring and bumps two counters —
/// no allocation, no branching on consumer state — so leaving it enabled
/// in production costs a few stores per lifecycle transition.
///
/// capacity = 0 disables recording entirely (the recorder-off arm of the
/// zero-perturbation differential). keep_all additionally retains every
/// event in an unbounded side buffer — the full-export mode, off by
/// default, for offline analysis.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity,
                          bool keep_all = false)
      : ring_(capacity), keep_all_(keep_all) {}

  [[nodiscard]] bool enabled() const {
    return !ring_.empty() || keep_all_;
  }
  [[nodiscard]] bool keep_all() const { return keep_all_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  void record(const RequestTraceEvent& ev) {
    if (!ring_.empty()) {
      if (ring_count_ == ring_.size()) ++dropped_;
      ring_[head_] = ev;
      head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
      if (ring_count_ < ring_.size()) ++ring_count_;
    }
    if (keep_all_) all_.push_back(ev);
    ++recorded_;
  }

  /// Events ever recorded / overwritten out of the ring. recorded -
  /// dropped = events still retrievable from ring_events() (when
  /// keep_all is off).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// The ring's contents, oldest first.
  [[nodiscard]] std::vector<RequestTraceEvent> ring_events() const {
    std::vector<RequestTraceEvent> out;
    out.reserve(ring_count_);
    const std::size_t start =
        ring_count_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < ring_count_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  /// The full stream (keep_all mode only; empty otherwise).
  [[nodiscard]] const std::vector<RequestTraceEvent>& all_events() const {
    return all_;
  }

  /// What a dump should serialize: the full stream when kept, else the
  /// ring. `events_dropped` tells the consumer whether the view is
  /// truncated (trace_io relaxes its pairing invariants then).
  [[nodiscard]] std::vector<RequestTraceEvent> export_events() const {
    return keep_all_ ? all_ : ring_events();
  }
  [[nodiscard]] std::uint64_t events_dropped() const {
    return keep_all_ ? 0 : dropped_;
  }

  // --- Anomaly latch --------------------------------------------------------
  /// The service notes each anomaly it observes; a consumer that tracks
  /// anomalies() across pumps knows when to dump the ring.
  void note_anomaly(AnomalyKind kind, std::uint64_t cycle) {
    ++anomalies_;
    last_anomaly_ = kind;
    last_anomaly_cycle_ = cycle;
  }
  [[nodiscard]] std::uint64_t anomalies() const { return anomalies_; }
  [[nodiscard]] AnomalyKind last_anomaly() const { return last_anomaly_; }
  [[nodiscard]] std::uint64_t last_anomaly_cycle() const {
    return last_anomaly_cycle_;
  }

 private:
  std::vector<RequestTraceEvent> ring_;  ///< preallocated, fixed size
  std::size_t head_ = 0;                 ///< next write position
  std::size_t ring_count_ = 0;           ///< valid entries in the ring
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  bool keep_all_ = false;
  std::vector<RequestTraceEvent> all_;
  std::uint64_t anomalies_ = 0;
  AnomalyKind last_anomaly_ = AnomalyKind::kNone;
  std::uint64_t last_anomaly_cycle_ = 0;
};

/// Service-level tracing knobs (ServiceConfig::trace).
struct TraceConfig {
  /// Flight-recorder ring size; 0 disables recording entirely (the
  /// recorder-off arm of the zero-perturbation differential).
  std::size_t ring_capacity = FlightRecorder::kDefaultCapacity;
  /// Full-export mode: additionally retain every event (unbounded).
  /// Off by default; bench/service_latency --trace turns it on.
  bool keep_all = false;
  /// Periodic registry sampling cadence in modeled cycles (0 = off):
  /// every interval the service re-exports its metrics into the registry
  /// and appends one sample row (MetricsRegistry::sample).
  std::uint64_t sample_interval = 0;
};

/// A self-describing flight-recorder export: the events plus the context
/// needed to validate and render them. Serialization, parsing, validation
/// and causal-chain explanation live in svc/trace_io.hpp.
struct TraceDump {
  static constexpr int kVersion = 1;

  std::uint64_t now = 0;       ///< service clock at dump time
  unsigned lanes = 0;          ///< tenant lane count
  unsigned devices = 0;        ///< hardware devices (device==devices: sw)
  std::uint64_t recorded = 0;  ///< events ever recorded
  std::uint64_t dropped = 0;   ///< overwritten out of the ring
  std::uint64_t anomalies = 0;
  AnomalyKind last_anomaly = AnomalyKind::kNone;
  std::uint64_t last_anomaly_cycle = 0;
  std::vector<RequestTraceEvent> events;

  /// True when the event list is the complete history (nothing was
  /// overwritten), so pairing invariants must hold.
  [[nodiscard]] bool complete() const { return dropped == 0; }
};

}  // namespace wfasic::svc
