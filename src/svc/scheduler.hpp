// Deterministic weighted-fair lane scheduler (start-time fair queueing).
//
// Each lane carries a virtual finish tag. Dispatching a shard of cost c
// from lane l advances l's tag by c/weight(l) (fixed-point, so the
// arithmetic is exact and platform-independent); the next dispatch goes
// to the backlogged lane with the smallest tag, ties broken to the lowest
// lane index. A lane that went idle re-enters at the scheduler's virtual
// clock rather than its stale tag, so it cannot hoard credit while empty.
// Over any backlogged interval, lane l therefore receives cost in
// proportion to weight(l) — and the whole decision sequence is a pure
// function of the (cost, eligibility) history, which is what makes the
// service's scheduling decisions replay bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::svc {

class WfqScheduler {
 public:
  explicit WfqScheduler(std::vector<unsigned> weights)
      : weights_(std::move(weights)), vfinish_(weights_.size(), 0) {
    for (const unsigned w : weights_) {
      WFASIC_REQUIRE(w > 0, "WfqScheduler: lane weights must be positive");
    }
  }

  /// The lane the next shard should come from, among lanes flagged
  /// eligible (= backlogged). Returns lanes() when none is.
  [[nodiscard]] std::size_t pick(const std::vector<bool>& eligible) const {
    WFASIC_REQUIRE(eligible.size() == weights_.size(),
                   "WfqScheduler::pick: eligibility size mismatch");
    std::size_t best = weights_.size();
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      if (!eligible[l]) continue;
      if (best == weights_.size() || start_tag(l) < start_tag(best)) {
        best = l;
      }
    }
    return best;
  }

  /// Accounts a dispatched shard of `cost` (any additive work unit — the
  /// service uses total bases) against `lane`.
  void charge(std::size_t lane, std::uint64_t cost) {
    WFASIC_REQUIRE(lane < weights_.size(), "WfqScheduler::charge: bad lane");
    const std::uint64_t start = start_tag(lane);
    vfinish_[lane] = start + cost * kScale / weights_[lane];
    vclock_ = start;
  }

  [[nodiscard]] std::size_t lanes() const { return weights_.size(); }

 private:
  /// Fixed-point scale for cost/weight, keeping tags integral and exact.
  static constexpr std::uint64_t kScale = 1024;

  [[nodiscard]] std::uint64_t start_tag(std::size_t lane) const {
    return vfinish_[lane] > vclock_ ? vfinish_[lane] : vclock_;
  }

  std::vector<unsigned> weights_;
  std::vector<std::uint64_t> vfinish_;
  std::uint64_t vclock_ = 0;
};

}  // namespace wfasic::svc
