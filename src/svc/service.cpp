#include "svc/service.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace wfasic::svc {

namespace {

std::vector<unsigned> lane_weights(const std::vector<LaneConfig>& lanes) {
  std::vector<unsigned> weights;
  weights.reserve(lanes.size());
  for (const LaneConfig& lane : lanes) weights.push_back(lane.weight);
  return weights;
}

ServiceConfig normalized(ServiceConfig cfg) {
  if (cfg.lanes.empty()) cfg.lanes.push_back(LaneConfig{});
  WFASIC_REQUIRE(cfg.max_batch_pairs > 0,
                 "AlignService: max_batch_pairs must be positive");
  return cfg;
}

}  // namespace

AlignService::AlignService(const ServiceConfig& cfg)
    : cfg_(normalized(cfg)),
      engine_(cfg_.engine),
      wfq_(lane_weights(cfg_.lanes)),
      queues_(cfg_.lanes.size()),
      tick_(cfg_.tick_cycles != 0 ? cfg_.tick_cycles
                                  : cfg_.engine.device.poll_quantum),
      max_inflight_(cfg_.max_inflight_shards != 0
                        ? cfg_.max_inflight_shards
                        : 2 * engine_.num_devices()),
      recorder_(cfg_.trace.ring_capacity, cfg_.trace.keep_all) {
  stats_.lanes.resize(cfg_.lanes.size());
}

void AlignService::trace(TraceEventKind kind, std::uint64_t id, unsigned lane,
                         std::uint32_t device, std::uint64_t aux0,
                         std::uint64_t aux1, std::uint64_t ts_override,
                         std::uint64_t dur) {
  if (!recorder_.enabled()) return;
  RequestTraceEvent ev;
  ev.kind = kind;
  ev.ts = ts_override != kTraceNow ? ts_override : now_;
  ev.dur = dur;
  ev.id = id;
  ev.lane = lane;
  ev.device = device;
  ev.aux0 = aux0;
  ev.aux1 = aux1;
  recorder_.record(ev);
}

TraceDump AlignService::trace_dump() const {
  TraceDump dump;
  dump.now = now_;
  dump.lanes = num_lanes();
  dump.devices = engine_.num_devices();
  dump.recorded = recorder_.recorded();
  dump.dropped = recorder_.events_dropped();
  dump.anomalies = recorder_.anomalies();
  dump.last_anomaly = recorder_.last_anomaly();
  dump.last_anomaly_cycle = recorder_.last_anomaly_cycle();
  dump.events = recorder_.export_events();
  return dump;
}

void AlignService::export_metrics(common::MetricsRegistry& reg) const {
  reg.clear();
  engine::export_to_registry(engine_.metrics(), reg, "engine");
  reg.counter("svc_now") = now_;
  reg.counter("svc_shards_dispatched") = stats_.shards_dispatched;
  reg.counter("svc_shard_attempts") = stats_.shard_attempts;
  reg.counter("svc_shards_failed") = stats_.shards_failed;
  reg.counter("svc_hedges_launched") = stats_.hedges_launched;
  reg.counter("svc_duplicates_suppressed") = stats_.duplicates_suppressed;
  reg.counter("svc_cancels_attempted") = stats_.cancels_attempted;
  reg.counter("svc_cancels_succeeded") = stats_.cancels_succeeded;
  reg.counter("svc_sw_shards") = stats_.sw_shards;
  reg.counter("svc_preemptions") = stats_.preemptions;
  reg.counter("svc_resumes") = stats_.resumes;
  reg.counter("svc_inflight_high_water") = stats_.inflight_high_water;
  reg.counter("svc_trace_recorded") = recorder_.recorded();
  reg.counter("svc_trace_dropped") = recorder_.dropped();
  reg.counter("svc_trace_anomalies") = recorder_.anomalies();
  for (std::size_t i = 0; i < stats_.lanes.size(); ++i) {
    const LaneStats& ls = stats_.lanes[i];
    const std::string p = "svc_lane" + std::to_string(i);
    reg.counter(p + "_submitted") = ls.submitted;
    reg.counter(p + "_accepted") = ls.accepted;
    reg.counter(p + "_would_block") = ls.would_block;
    reg.counter(p + "_rejected") = ls.rejected;
    reg.counter(p + "_shed") = ls.shed;
    reg.counter(p + "_completed_ok") = ls.completed_ok;
    reg.counter(p + "_deadline_miss") = ls.deadline_miss;
    reg.counter(p + "_hedges_launched") = ls.hedges_launched;
    reg.counter(p + "_hedges_won") = ls.hedges_won;
    reg.counter(p + "_retries") = ls.retries;
    reg.counter(p + "_sw_resolved") = ls.sw_resolved;
    reg.counter(p + "_device_cycles") = ls.device_cycles;
    reg.counter(p + "_sw_cycles") = ls.sw_cycles;
    reg.counter(p + "_queue_high_water") = ls.queue_high_water;
    reg.histogram(p + "_latency_cycles") = ls.latency;
    // Per-tenant SLO attainment: the fraction of terminal requests that
    // completed within their deadline, plus the failure-mode split.
    const std::uint64_t terminal = ls.completed_ok + ls.deadline_miss + ls.shed;
    const double denom =
        terminal != 0 ? static_cast<double>(terminal) : 1.0;
    reg.gauge(p + "_slo_attainment") =
        terminal != 0 ? static_cast<double>(ls.completed_ok) / denom : 1.0;
    reg.gauge(p + "_miss_rate") = static_cast<double>(ls.deadline_miss) / denom;
    reg.gauge(p + "_shed_rate") = static_cast<double>(ls.shed) / denom;
    reg.gauge(p + "_hedge_win_rate") =
        terminal != 0 ? static_cast<double>(ls.hedges_won) / denom : 0.0;
  }
}

SubmitResult AlignService::submit(unsigned lane, std::string a, std::string b,
                                  std::uint64_t deadline_cycle) {
  WFASIC_REQUIRE(lane < queues_.size(), "AlignService::submit: bad lane");
  const LaneConfig& lc = cfg_.lanes[lane];
  LaneStats& ls = stats_.lanes[lane];
  ++ls.submitted;

  std::uint64_t deadline = deadline_cycle;
  if (deadline == 0 && lc.default_deadline_cycles != 0) {
    deadline = now_ + lc.default_deadline_cycles;
  }
  if (deadline != 0 && deadline <= now_) {
    // Dead on arrival: shed without spending queue space or device
    // cycles. The client still gets its one completion.
    const RequestId id = next_request_++;
    trace(TraceEventKind::kShedAdmission, id, lane,
          RequestTraceEvent::kNoDevice, deadline);
    ServiceCompletion shed;
    shed.id = id;
    shed.lane = lane;
    shed.outcome = RequestOutcome::kShed;
    shed.arrival_cycle = now_;
    shed.complete_cycle = now_;
    shed.deadline = deadline;
    emit(std::move(shed));
    return {Admission::kShedExpired, id};
  }
  if (cfg_.degrade == DegradeMode::kRejectNew && !fleet_usable()) {
    ++ls.rejected;
    trace(TraceEventKind::kRejected, 0, lane);
    return {Admission::kRejected, 0};
  }
  if (queues_[lane].size() >= lc.queue_capacity) {
    ++ls.would_block;
    trace(TraceEventKind::kWouldBlock, 0, lane, RequestTraceEvent::kNoDevice,
          queues_[lane].size());
    return {Admission::kWouldBlock, 0};
  }

  QueuedRequest rq;
  rq.id = next_request_++;
  rq.pair.a = std::move(a);
  rq.pair.b = std::move(b);
  rq.arrival = now_;
  rq.deadline = deadline;
  queues_[lane].push_back(std::move(rq));
  ++ls.accepted;
  ls.queue_high_water = std::max(ls.queue_high_water, queues_[lane].size());
  trace(TraceEventKind::kAdmit, next_request_ - 1, lane,
        RequestTraceEvent::kNoDevice, deadline);
  return {Admission::kAccepted, next_request_ - 1};
}

std::vector<ServiceCompletion> AlignService::harvest() {
  std::vector<ServiceCompletion> out = std::move(completions_);
  completions_.clear();
  return out;
}

void AlignService::advance_to(std::uint64_t cycle) {
  WFASIC_REQUIRE(cycle >= now_,
                 "AlignService::advance_to: the clock cannot move backwards");
  now_ = cycle;
}

bool AlignService::busy() const {
  if (!shards_.empty()) return true;
  for (const auto& queue : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

std::size_t AlignService::inflight_shards() const {
  // Parked (preempted) shards hold no device and make no progress, so
  // they do not occupy an in-flight slot — that is exactly what lets the
  // urgent shard dispatch in their place.
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    n += shard.resolved || shard.preempted ? 0 : 1;
  }
  return n;
}

bool AlignService::pump() {
  shed_expired_queued();
  cancel_expired_inflight();
  preempt_for_urgent();
  dispatch();
  resume_preempted();
  check_hedges();
  engine_.poll();
  // The poll simulated one quantum of device time: advance the clock
  // BEFORE collecting, so a completion surfaces one tick after its work
  // and modeled latency includes the device time it consumed.
  now_ += tick_;
  collect();
  // Periodic metrics sampling (TraceConfig::sample_interval): re-export
  // into the registry and append one trajectory row. Runs after every
  // scheduling decision of the round, so it observes but never steers.
  if (cfg_.trace.sample_interval != 0 &&
      now_ - last_sample_ >= cfg_.trace.sample_interval) {
    export_metrics(registry_);
    registry_.sample(now_);
    last_sample_ = now_;
  }
  return busy();
}

void AlignService::drain() {
  std::uint64_t rounds = 0;
  while (busy()) {
    pump();
    WFASIC_REQUIRE(++rounds < 100'000'000ULL,
                   "AlignService::drain: service failed to quiesce");
  }
}

void AlignService::emit(ServiceCompletion&& completion) {
  LaneStats& ls = stats_.lanes[completion.lane];
  // The single terminal-accounting point doubles as the single terminal
  // trace point: exactly one kComplete/kDeadlineMiss/kShed per request.
  switch (completion.outcome) {
    case RequestOutcome::kOk:
      ++ls.completed_ok;
      trace(TraceEventKind::kComplete, completion.id, completion.lane,
            RequestTraceEvent::kNoDevice, completion.latency());
      break;
    case RequestOutcome::kDeadlineMiss:
      ++ls.deadline_miss;
      trace(TraceEventKind::kDeadlineMiss, completion.id, completion.lane,
            RequestTraceEvent::kNoDevice,
            completion.complete_cycle - completion.deadline,
            completion.latency());
      recorder_.note_anomaly(AnomalyKind::kDeadlineMiss, now_);
      break;
    case RequestOutcome::kShed:
      ++ls.shed;
      trace(TraceEventKind::kShed, completion.id, completion.lane,
            RequestTraceEvent::kNoDevice, completion.deadline);
      recorder_.note_anomaly(AnomalyKind::kShed, now_);
      break;
  }
  if (completion.outcome != RequestOutcome::kShed) {
    ls.latency.record(completion.latency());
    if (completion.software) ++ls.sw_resolved;
    if (completion.hedged) ++ls.hedges_won;
  }
  completions_.push_back(std::move(completion));
}

void AlignService::shed_expired_queued() {
  for (unsigned lane = 0; lane < queues_.size(); ++lane) {
    auto& queue = queues_[lane];
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->deadline == 0 || it->deadline > now_) {
        ++it;
        continue;
      }
      ServiceCompletion shed;
      shed.id = it->id;
      shed.lane = lane;
      shed.outcome = RequestOutcome::kShed;
      shed.arrival_cycle = it->arrival;
      shed.complete_cycle = now_;
      shed.deadline = it->deadline;
      emit(std::move(shed));
      it = queue.erase(it);
    }
  }
}

void AlignService::cancel_expired_inflight() {
  for (Shard& shard : shards_) {
    if (shard.resolved) continue;
    bool all_expired = true;
    for (const QueuedRequest& rq : shard.reqs) {
      all_expired = all_expired && rq.deadline != 0 && rq.deadline <= now_;
    }
    if (!all_expired) continue;
    // Recall whatever the engine has not launched yet. An attempt already
    // on a device cannot be recalled — its deadline-derived cycle budget
    // bounds it instead, and the shard sheds once every attempt is down.
    bool outstanding = false;
    for (Attempt& attempt : shard.attempts) {
      if (!attempt.outstanding) continue;
      ++stats_.cancels_attempted;
      const bool cancelled = engine_.cancel(attempt.handle);
      if (cancelled) {
        attempt.outstanding = false;
        ++stats_.cancels_succeeded;
      } else {
        outstanding = true;
      }
      trace(TraceEventKind::kCancel, shard.id, shard.lane, attempt.backend,
            cancelled ? 1 : 0);
    }
    if (!outstanding) resolve_shed(shard);
  }
  shards_.erase(
      std::remove_if(shards_.begin(), shards_.end(),
                     [](const Shard& s) {
                       if (!s.resolved) return false;
                       for (const Attempt& a : s.attempts) {
                         if (a.outstanding) return false;
                       }
                       return true;
                     }),
      shards_.end());
}

bool AlignService::urgent_pressure() const {
  const auto urgent = [&](const QueuedRequest& rq) {
    return rq.deadline != 0 && rq.deadline > now_ &&
           rq.deadline - now_ <= cfg_.preempt.urgent_span;
  };
  for (const auto& queue : queues_) {
    for (const QueuedRequest& rq : queue) {
      if (urgent(rq)) return true;
    }
  }
  for (const Shard& shard : shards_) {
    if (shard.resolved || shard.preempted) continue;
    for (const QueuedRequest& rq : shard.reqs) {
      if (urgent(rq)) return true;
    }
  }
  return false;
}

void AlignService::preempt_for_urgent() {
  if (!cfg_.preempt.enabled || !urgent_pressure()) return;
  // A free usable device means the urgent work can dispatch (or launch)
  // without evicting anybody.
  for (unsigned d = 0; d < engine_.num_devices(); ++d) {
    if (engine_.health().usable(d) && engine_.device(d).pending() == 0) {
      return;
    }
  }
  const auto urgent = [&](const QueuedRequest& rq) {
    return rq.deadline != 0 && rq.deadline > now_ &&
           rq.deadline - now_ <= cfg_.preempt.urgent_span;
  };
  // Oldest eligible victim first: a lone hardware attempt, on the device
  // long enough to be worth checkpointing, carrying no urgent deadline of
  // its own. Engine::preempt only succeeds for a device's *active* run,
  // so queued attempts fall through harmlessly.
  for (Shard& shard : shards_) {
    if (shard.resolved || shard.preempted) continue;
    if (now_ - shard.dispatch_cycle < cfg_.preempt.min_runtime) continue;
    if (shard.attempts.size() != 1 || !shard.attempts[0].outstanding ||
        shard.attempts[0].backend == engine_.num_devices()) {
      continue;
    }
    bool shard_urgent = false;
    for (const QueuedRequest& rq : shard.reqs) {
      shard_urgent = shard_urgent || urgent(rq);
    }
    if (shard_urgent) continue;
    if (!engine_.preempt(shard.attempts[0].handle)) continue;
    shard.preempted = true;
    ++stats_.preemptions;
    trace(TraceEventKind::kPreemptPark, shard.id, shard.lane,
          shard.attempts[0].backend);
    return;  // one eviction per round keeps churn bounded
  }
}

void AlignService::resume_preempted() {
  if (!cfg_.preempt.enabled || urgent_pressure()) return;
  for (Shard& shard : shards_) {
    if (!shard.preempted || shard.resolved) continue;
    if (inflight_shards() >= max_inflight_) return;
    Attempt& primary = shard.attempts[0];
    if (!primary.outstanding || !engine_.preempted(primary.handle)) {
      // The parked copy was cancelled (a hedge won the race) — nothing
      // left to resume.
      shard.preempted = false;
      continue;
    }
    if (!engine_.resume(primary.handle)) continue;
    // resume() re-homed the job on the least-loaded usable device; keep
    // the attempt's placement attribution honest for future hedges.
    primary.backend = engine_.handle_device(primary.handle);
    shard.preempted = false;
    ++stats_.resumes;
    trace(TraceEventKind::kPreemptResume, shard.id, shard.lane,
          primary.backend);
  }
}

bool AlignService::fleet_usable() const {
  return engine_.health().any_usable();
}

unsigned AlignService::pick_device_excluding(unsigned avoid) {
  const unsigned none = engine_.num_devices();
  unsigned best = none;
  std::size_t best_pending = 0;
  for (unsigned d = 0; d < engine_.num_devices(); ++d) {
    if (d == avoid || !engine_.health().usable(d)) continue;
    const std::size_t pending = engine_.device(d).pending();
    if (best == none || pending < best_pending) {
      best = d;
      best_pending = pending;
    }
  }
  return best;
}

std::uint64_t AlignService::estimate_cycles(const Shard& shard) const {
  double est = 0;
  for (const QueuedRequest& rq : shard.reqs) {
    est += cfg_.hedge.est_cycles_per_base *
           static_cast<double>(std::max(rq.pair.a.size(), rq.pair.b.size()));
  }
  return static_cast<std::uint64_t>(std::llround(est));
}

void AlignService::launch_attempt(Shard& shard, bool software, unsigned avoid,
                                  bool hedge) {
  engine::BatchJob job;
  const LaneConfig& lc = cfg_.lanes[shard.lane];
  // Correlation tag: the shard id rides the job into the engine and the
  // device trace (Driver::annotate_trace), and comes back on the
  // completion — how a request span joins the cycle-level device track.
  job.trace_tag = shard.id;
  job.backtrace = lc.backtrace;
  // The multi-Aligner chip requires the data-separation backtrace method.
  job.separate_data =
      lc.backtrace && cfg_.engine.device.accel.num_aligners > 1;
  job.pairs.reserve(shard.reqs.size());
  bool all_deadlined = true;
  std::uint64_t max_deadline = 0;
  for (std::size_t i = 0; i < shard.reqs.size(); ++i) {
    job.pairs.push_back({static_cast<std::uint32_t>(i), shard.reqs[i].pair.a,
                         shard.reqs[i].pair.b});
    all_deadlined = all_deadlined && shard.reqs[i].deadline != 0;
    max_deadline = std::max(max_deadline, shard.reqs[i].deadline);
  }
  // Deadline-aware budget: a launch that outlives every deadline it
  // carries is killed by the device's cycle budget instead of wasting the
  // fleet on results nobody will accept.
  if (all_deadlined && !software) {
    job.cycle_budget = max_deadline > now_ ? max_deadline - now_ : 1;
  }

  Attempt attempt;
  attempt.hedge = hedge;
  if (!software && avoid != engine_.num_devices()) {
    const unsigned dev = pick_device_excluding(avoid);
    if (dev == engine_.num_devices()) {
      software = true;
    } else {
      attempt.handle = engine_.submit_on(dev, std::move(job));
      attempt.backend = dev;
    }
  } else if (!software) {
    attempt.handle = engine_.submit(std::move(job));
    attempt.backend = engine_.handle_device(attempt.handle);
  }
  if (software) {
    attempt.handle = engine_.submit_software(std::move(job));
    attempt.backend = engine_.num_devices();
    ++stats_.sw_shards;
  }
  shard.attempts.push_back(attempt);
  ++shard.attempt_count;
  ++stats_.shard_attempts;
  const AttemptFlavor flavor =
      attempt.backend == engine_.num_devices()
          ? AttemptFlavor::kSoftware
          : (hedge ? AttemptFlavor::kHedge : AttemptFlavor::kPrimary);
  trace(TraceEventKind::kAttemptLaunch, shard.id, shard.lane, attempt.backend,
        shard.attempt_count - 1, static_cast<std::uint64_t>(flavor));
}

void AlignService::dispatch() {
  while (inflight_shards() < max_inflight_) {
    std::vector<bool> eligible(queues_.size());
    bool any = false;
    for (std::size_t lane = 0; lane < queues_.size(); ++lane) {
      eligible[lane] = !queues_[lane].empty();
      any = any || eligible[lane];
    }
    if (!any) return;
    const std::size_t lane = wfq_.pick(eligible);

    Shard shard;
    shard.id = next_shard_++;
    shard.lane = static_cast<unsigned>(lane);
    shard.dispatch_cycle = now_;
    std::uint64_t cost = 0;
    auto& queue = queues_[lane];
    while (!queue.empty() && shard.reqs.size() < cfg_.max_batch_pairs) {
      cost += queue.front().pair.a.size() + queue.front().pair.b.size();
      shard.reqs.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    wfq_.charge(lane, cost);
    shard.est_cycles = estimate_cycles(shard);

    // Degradation policy: an unusable fleet always degrades to software
    // (liveness — admitted work must drain); kDegradeToSoftware also
    // spills over once every usable device is backlogged to the limit.
    bool software = !fleet_usable();
    if (!software && cfg_.degrade == DegradeMode::kDegradeToSoftware &&
        cfg_.hw_backlog_limit != 0) {
      bool all_backlogged = true;
      for (unsigned d = 0; d < engine_.num_devices(); ++d) {
        if (!engine_.health().usable(d)) continue;
        all_backlogged =
            all_backlogged && engine_.device(d).pending() >= cfg_.hw_backlog_limit;
      }
      software = all_backlogged;
    }
    // The queue-wait span closes for every request the shard carries
    // (stamped at arrival — the request→shard join the explainer uses),
    // then the shard itself is born.
    for (const QueuedRequest& rq : shard.reqs) {
      trace(TraceEventKind::kQueueWait, rq.id, shard.lane,
            RequestTraceEvent::kNoDevice, shard.id, 0, rq.arrival,
            now_ - rq.arrival);
    }
    trace(TraceEventKind::kDispatch, shard.id, shard.lane,
          RequestTraceEvent::kNoDevice, shard.reqs.size());
    if (software) {
      trace(TraceEventKind::kSwDegrade, shard.id, shard.lane,
            engine_.num_devices());
    }
    launch_attempt(shard, software, engine_.num_devices(), /*hedge=*/false);
    ++stats_.shards_dispatched;
    shards_.push_back(std::move(shard));
    stats_.inflight_high_water =
        std::max(stats_.inflight_high_water, inflight_shards());
  }
}

void AlignService::check_hedges() {
  if (!cfg_.hedge.enabled) return;
  for (Shard& shard : shards_) {
    if (shard.resolved || shard.hedged ||
        shard.attempt_count >= cfg_.hedge.max_attempts) {
      continue;
    }
    // Hedge the classic straggler: exactly the primary outstanding, on
    // hardware, past its expected service time.
    if (shard.attempts.size() != 1 || !shard.attempts[0].outstanding ||
        shard.attempts[0].backend == engine_.num_devices()) {
      continue;
    }
    const std::uint64_t threshold =
        std::max(cfg_.hedge.min_cycles,
                 static_cast<std::uint64_t>(std::llround(
                     static_cast<double>(shard.est_cycles) *
                     cfg_.hedge.latency_factor)));
    if (now_ - shard.dispatch_cycle <= threshold) continue;
    const unsigned avoid = shard.attempts[0].backend;
    launch_attempt(shard, /*software=*/false, avoid, /*hedge=*/true);
    shard.hedged = true;
    ++stats_.hedges_launched;
    ++stats_.lanes[shard.lane].hedges_launched;
    trace(TraceEventKind::kHedgeLaunch, shard.id, shard.lane,
          shard.attempts.back().backend, shard.attempt_count - 1);
  }
}

void AlignService::collect() {
  for (Shard& shard : shards_) {
    // Index loop: process_completion may push a retry attempt onto
    // shard.attempts, which would invalidate range-for iterators.
    for (std::size_t i = 0; i < shard.attempts.size(); ++i) {
      if (!shard.attempts[i].outstanding ||
          !engine_.ready(shard.attempts[i].handle)) {
        continue;
      }
      engine::Completion completion =
          *engine_.try_collect(shard.attempts[i].handle);
      shard.attempts[i].outstanding = false;
      process_completion(shard, shard.attempts[i], std::move(completion));
    }
  }
  // Residual shards spawned during resolution (hardware-rejected pairs
  // re-sliced onto the software backend) join the live set now — the
  // deque must not grow mid-iteration.
  for (Shard& spawned : spawned_) shards_.push_back(std::move(spawned));
  spawned_.clear();
  shards_.erase(
      std::remove_if(shards_.begin(), shards_.end(),
                     [](const Shard& s) {
                       if (!s.resolved) return false;
                       for (const Attempt& a : s.attempts) {
                         if (a.outstanding) return false;
                       }
                       return true;
                     }),
      shards_.end());
}

void AlignService::process_completion(Shard& shard, Attempt& attempt,
                                      engine::Completion&& completion) {
  // Circuit breaker: every hardware outcome feeds the engine's health
  // scoreboard, so repeated failures quarantine the device and future
  // dispatch/hedge placement skips it.
  if (attempt.backend != engine_.num_devices()) {
    const bool was_usable = engine_.health().usable(attempt.backend);
    engine_.note_outcome(attempt.backend, completion.outcome);
    if (was_usable && !engine_.health().usable(attempt.backend)) {
      recorder_.note_anomaly(AnomalyKind::kQuarantine, now_);
    }
  }
  if (shard.resolved) {
    // The race was already decided (first completion won, or the shard
    // shed) — suppress the duplicate.
    ++stats_.duplicates_suppressed;
    trace(TraceEventKind::kHedgeLose, shard.id, shard.lane, attempt.backend);
    return;
  }
  if (completion.completed_run()) {
    resolve_completed(shard, attempt, std::move(completion));
    return;
  }
  ++stats_.shards_failed;
  trace(TraceEventKind::kAttemptFailed, shard.id, shard.lane, attempt.backend,
        static_cast<std::uint64_t>(completion.outcome));
  recorder_.note_anomaly(AnomalyKind::kAttemptFailure, now_);
  for (const Attempt& other : shard.attempts) {
    if (other.outstanding) return;  // a live copy may still win
  }
  bool all_expired = !shard.reqs.empty();
  for (const QueuedRequest& rq : shard.reqs) {
    all_expired = all_expired && rq.deadline != 0 && rq.deadline <= now_;
  }
  if (all_expired) {
    resolve_shed(shard);
    return;
  }
  ++stats_.lanes[shard.lane].retries;
  trace(TraceEventKind::kRetry, shard.id, shard.lane,
        RequestTraceEvent::kNoDevice, shard.attempt_count);
  if (shard.attempt_count < cfg_.hedge.max_attempts && fleet_usable()) {
    // Retry away from the device that just failed.
    launch_attempt(shard, /*software=*/false, attempt.backend,
                   /*hedge=*/true);
  } else {
    // Attempt budget spent (or no usable device): the software backend is
    // the terminal fallback — it always completes.
    trace(TraceEventKind::kSwDegrade, shard.id, shard.lane,
          engine_.num_devices());
    launch_attempt(shard, /*software=*/true, engine_.num_devices(),
                   /*hedge=*/true);
  }
}

void AlignService::resolve_completed(Shard& shard, const Attempt& attempt,
                                     engine::Completion&& completion) {
  shard.resolved = true;
  const bool is_sw = attempt.backend == engine_.num_devices();
  LaneStats& ls = stats_.lanes[shard.lane];
  // Per-tenant attribution: the winning attempt's modeled cycles are the
  // lane's bill (losing hedges are fleet overhead, kept in ServiceStats).
  if (is_sw) {
    ls.sw_cycles += completion.sw_align_cycles;
  } else {
    ls.device_cycles += completion.encode_cycles + completion.accel_cycles +
                        completion.decode_cycles;
  }
  // The winning run's device span, annotated with its PMU deltas (the
  // per-run RunStatus::perf the completion carries) — what correlates a
  // request's story with the cycle-level device track. The span is
  // clamped to the shard's service-clock window: a run's busy cycles can
  // exceed the dispatch→now wall span (modeled SwBackend op cycles,
  // idle-skip fast-forwarding), and a span must not outrun the clock.
  const std::uint64_t run_cycles =
      is_sw ? completion.sw_align_cycles : completion.accel_cycles;
  trace(TraceEventKind::kDeviceRun, shard.id, shard.lane, attempt.backend,
        completion.perf.aligner_wavefront_steps,
        completion.perf.dma_beats_read, shard.dispatch_cycle,
        std::min(run_cycles, now_ - shard.dispatch_cycle));
  if (completion.checkpoints != 0) {
    trace(TraceEventKind::kCheckpoint, shard.id, shard.lane, attempt.backend,
          completion.checkpoints);
  }
  if (completion.restores != 0) {
    trace(TraceEventKind::kRestore, shard.id, shard.lane, attempt.backend,
          completion.restores, completion.recomputed_cycles);
  }
  if (attempt.hedge) {
    trace(TraceEventKind::kHedgeWin, shard.id, shard.lane, attempt.backend);
  }
  // First completion wins: recall losing attempts the engine can still
  // cancel; launched ones finish later and are suppressed on arrival.
  for (Attempt& other : shard.attempts) {
    if (!other.outstanding) continue;
    ++stats_.cancels_attempted;
    if (engine_.cancel(other.handle)) {
      other.outstanding = false;
      ++stats_.cancels_succeeded;
    }
  }

  const std::vector<core::AlignResult>& aligned =
      completion.result.alignments;
  WFASIC_REQUIRE(aligned.size() == shard.reqs.size(),
                 "AlignService: completion does not cover the shard");
  std::vector<QueuedRequest> to_software;
  for (std::size_t i = 0; i < shard.reqs.size(); ++i) {
    QueuedRequest& rq = shard.reqs[i];
    if (!aligned[i].ok && !is_sw) {
      // Deterministic hardware rejection (unsupported read, band or score
      // overflow): the pair re-shards onto the software backend rather
      // than surfacing a failure to the client.
      to_software.push_back(std::move(rq));
      continue;
    }
    ServiceCompletion done;
    done.id = rq.id;
    done.lane = shard.lane;
    done.outcome = rq.deadline != 0 && now_ > rq.deadline
                       ? RequestOutcome::kDeadlineMiss
                       : RequestOutcome::kOk;
    done.result = aligned[i];
    done.arrival_cycle = rq.arrival;
    done.complete_cycle = now_;
    done.deadline = rq.deadline;
    done.software = is_sw;
    done.hedged = attempt.hedge;
    emit(std::move(done));
  }
  if (!to_software.empty()) {
    Shard residual;
    residual.id = next_shard_++;
    residual.lane = shard.lane;
    residual.reqs = std::move(to_software);
    residual.dispatch_cycle = now_;
    residual.est_cycles = estimate_cycles(residual);
    // Hardware-rejected pairs re-shard onto the software backend: a new
    // shard is born mid-resolution, with its own dispatch + degrade
    // events (the requests' queue-wait spans still name the old shard).
    trace(TraceEventKind::kDispatch, residual.id, residual.lane,
          RequestTraceEvent::kNoDevice, residual.reqs.size());
    trace(TraceEventKind::kSwDegrade, residual.id, residual.lane,
          engine_.num_devices());
    launch_attempt(residual, /*software=*/true, engine_.num_devices(),
                   /*hedge=*/false);
    ++stats_.shards_dispatched;
    spawned_.push_back(std::move(residual));
  }
}

void AlignService::resolve_shed(Shard& shard) {
  shard.resolved = true;
  for (const QueuedRequest& rq : shard.reqs) {
    ServiceCompletion shed;
    shed.id = rq.id;
    shed.lane = shard.lane;
    shed.outcome = RequestOutcome::kShed;
    shed.arrival_cycle = rq.arrival;
    shed.complete_cycle = now_;
    shed.deadline = rq.deadline;
    emit(std::move(shed));
  }
}

}  // namespace wfasic::svc
