// Request-level types of the alignment service (svc/service.hpp).
//
// The service speaks in individual pair requests, not batches: a client
// submits one pair at a time into a tenant lane and harvests completions
// out of order. Everything here is expressed in *modeled* cycles — the
// service's deterministic virtual clock (AlignService::now), which
// advances one engine scheduling quantum per pump — so admission
// decisions, deadlines, sheds and latency percentiles replay bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/align_result.hpp"
#include "engine/metrics.hpp"

namespace wfasic::svc {

using RequestId = std::uint64_t;

/// Admission verdict of one submit() call.
enum class Admission : std::uint8_t {
  kAccepted,     ///< queued; a completion will eventually be harvestable
  kWouldBlock,   ///< lane admission queue full — explicit backpressure;
                 ///< retry after pumping/harvesting frees queue space
  kRejected,     ///< load-shedding by policy (DegradeMode::kRejectNew
                 ///< while the service is degraded)
  kShedExpired,  ///< deadline already past at admission; shed without
                 ///< queueing (a kShed completion is emitted)
};

struct SubmitResult {
  Admission admission = Admission::kAccepted;
  RequestId id = 0;  ///< 0 unless the request was accepted or shed

  [[nodiscard]] bool accepted() const {
    return admission == Admission::kAccepted;
  }
};

/// Terminal state of one request. Every accepted (or shed-at-admission)
/// request produces exactly one completion — hedged duplicates are
/// suppressed inside the service.
enum class RequestOutcome : std::uint8_t {
  kOk,            ///< aligned within its deadline
  kDeadlineMiss,  ///< aligned, but past its deadline (result still valid)
  kShed,          ///< dropped before producing a result (deadline passed
                  ///< while queued or in flight); no alignment attached
};

struct ServiceCompletion {
  RequestId id = 0;
  unsigned lane = 0;
  RequestOutcome outcome = RequestOutcome::kOk;
  /// Valid for kOk and kDeadlineMiss; default-constructed for kShed.
  core::AlignResult result;
  std::uint64_t arrival_cycle = 0;   ///< service clock at admission
  std::uint64_t complete_cycle = 0;  ///< service clock at resolution
  std::uint64_t deadline = 0;        ///< absolute deadline (0 = none)
  bool software = false;  ///< resolved by the SwBackend
  bool hedged = false;    ///< resolved by a hedge/retry attempt

  [[nodiscard]] std::uint64_t latency() const {
    return complete_cycle - arrival_cycle;
  }
};

/// What the service does when the hardware fleet degrades (every device
/// quarantined/retired, or the backlog limit exceeded).
enum class DegradeMode : std::uint8_t {
  /// Turn away new submissions (Admission::kRejected) while the fleet is
  /// unusable; already-admitted work still drains through the software
  /// backend so the service never wedges.
  kRejectNew,
  /// Keep admitting and route shards onto the software backend — lower
  /// throughput, no rejected clients.
  kDegradeToSoftware,
};

/// One tenant lane: its fair-share weight, admission bound and deadline
/// defaults.
struct LaneConfig {
  std::string name = "default";
  /// Weighted-fair share relative to the other lanes (scheduler.hpp).
  unsigned weight = 1;
  /// Bounded admission queue: submit() returns kWouldBlock beyond this.
  std::size_t queue_capacity = 256;
  /// Deadline assigned to requests submitted without one, as a span from
  /// admission (0 = no deadline).
  std::uint64_t default_deadline_cycles = 0;
  /// Request full CIGARs (otherwise score-only, the cheap service mode).
  bool backtrace = false;
};

/// Straggler mitigation: when a dispatched shard overstays its estimated
/// service time, a copy is hedged onto another healthy device (or the
/// software backend); the first completion wins and the loser's results
/// are suppressed.
struct HedgeConfig {
  bool enabled = true;
  /// Hedge once a shard's in-flight span exceeds
  /// max(min_cycles, latency_factor * estimated shard cycles).
  double latency_factor = 4.0;
  std::uint64_t min_cycles = 250'000;
  /// Shard service-time estimate: cycles per base of the longer sequence,
  /// summed over the shard's pairs.
  double est_cycles_per_base = 8.0;
  /// Total attempts a shard gets (primary + hedges + retries) before its
  /// unresolved requests go to the software backend terminally.
  unsigned max_attempts = 3;
};

/// Deadline-driven preemption: when a deadline-critical request is stuck
/// behind a long-running shard and no usable device is free, the service
/// checkpoint-evicts the long run off its device (engine::Engine::preempt
/// — the run parks losslessly at its eviction snapshot), lets the urgent
/// shard take the device, and resumes the parked run once the urgent
/// pressure clears. At most one eviction per pump round, so churn stays
/// bounded and deterministic.
struct PreemptConfig {
  bool enabled = false;
  /// A request counts as urgent while its deadline lies within this many
  /// cycles of the service clock.
  std::uint64_t urgent_span = 50'000;
  /// Only shards in flight at least this long are eviction candidates —
  /// a run about to finish frees its device cheaper than a checkpoint.
  std::uint64_t min_runtime = 10'000;
};

/// Per-tenant accounting, attributed at completion time. Deterministic:
/// derived from modeled cycle samples only.
struct LaneStats {
  std::uint64_t submitted = 0;    ///< submit() calls
  std::uint64_t accepted = 0;     ///< admitted into the lane queue
  std::uint64_t would_block = 0;  ///< backpressured (queue full)
  std::uint64_t rejected = 0;     ///< policy rejections (kRejectNew)
  std::uint64_t shed = 0;         ///< kShed completions (incl. admission)
  std::uint64_t completed_ok = 0;
  std::uint64_t deadline_miss = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;  ///< completions resolved by a hedge
  std::uint64_t retries = 0;     ///< relaunches after a failed attempt
  std::uint64_t sw_resolved = 0; ///< requests resolved by the SwBackend
  /// Device/software cycles consumed by the shards that resolved this
  /// lane's requests — the lane's share of the fleet's PMU busy time.
  std::uint64_t device_cycles = 0;
  std::uint64_t sw_cycles = 0;
  engine::Log2Histogram latency;  ///< kOk + kDeadlineMiss, modeled cycles
  std::size_t queue_high_water = 0;
};

/// Service-wide accounting.
struct ServiceStats {
  std::vector<LaneStats> lanes;
  std::uint64_t shards_dispatched = 0;
  std::uint64_t shard_attempts = 0;  ///< primaries + hedges + retries
  std::uint64_t shards_failed = 0;   ///< attempts that came back failed
  std::uint64_t hedges_launched = 0;
  std::uint64_t duplicates_suppressed = 0;  ///< losing-attempt completions
  std::uint64_t cancels_attempted = 0;
  std::uint64_t cancels_succeeded = 0;
  std::uint64_t sw_shards = 0;  ///< attempts placed on the SwBackend
  std::uint64_t preemptions = 0;  ///< shards checkpoint-evicted for urgency
  std::uint64_t resumes = 0;      ///< parked shards re-dispatched
  std::size_t inflight_high_water = 0;  ///< unresolved shards
};

}  // namespace wfasic::svc
