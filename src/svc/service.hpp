// Alignment as a service: the resilience layer over engine::Engine.
//
// The engine below this boundary is batch-centric: submit a BatchJob, get
// a Completion. AlignService re-slices that surface around *requests* —
// one sequence pair each, streamed in by tenants and harvested out of
// order — and adds the request-level robustness story:
//
//   - per-tenant lanes with weighted-fair scheduling (svc/scheduler.hpp):
//     a deterministic WFQ packs lane queues into engine shards of at most
//     max_batch_pairs, so no tenant starves and heavy tenants cannot
//     crowd out light ones beyond their weight;
//   - bounded admission queues with explicit backpressure: submit()
//     returns kWouldBlock when a lane is full — queue memory stays
//     bounded no matter the offered load;
//   - deadlines in modeled time: expired requests are shed before they
//     waste device cycles (queue shedding), in-flight shards whose every
//     request has expired are cancelled where the engine still can, and
//     late completions are marked kDeadlineMiss;
//   - hedged retries: a shard that overstays its estimated service time,
//     or whose attempt fails outright, gets a copy on another healthy
//     device (or the SwBackend). First completion wins; the loser is
//     suppressed, so each request resolves exactly once. The engine's
//     health scoreboard acts as the per-device circuit breaker — every
//     collected outcome is fed back, so repeatedly failing devices
//     quarantine and stop receiving shards;
//   - graceful degradation by policy: with the fleet unusable (or the
//     hardware backlog past its limit), kDegradeToSoftware routes shards
//     to the SwBackend while kRejectNew turns away new submissions and
//     lets the admitted backlog drain;
//   - deadline-driven preemption (PreemptConfig): a deadline-critical
//     request stuck behind a long-running shard checkpoint-evicts that
//     run off its device (engine::Engine::preempt — lossless park at the
//     eviction snapshot), takes the device, and the parked run resumes
//     once the pressure clears. Parked shards stay first-class: deadline
//     expiry cancels them, and a hedge may still race the parked copy.
//
// Time: the service runs a virtual clock in modeled cycles. Each pump()
// performs one scheduling round (shed, dispatch, hedge-check, one engine
// poll) and advances the clock by one engine scheduling quantum before
// collecting, so a completion surfaces one tick after its device work and
// modeled latency includes that time; advance_to() jumps the clock
// forward across idle gaps (open-loop arrival injection). Every decision
// is a pure function of the configuration and the submit/advance trace,
// so runs replay bit for bit.
//
// See docs/SERVICE.md for the full design.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/metrics_registry.hpp"
#include "engine/engine.hpp"
#include "svc/scheduler.hpp"
#include "svc/trace.hpp"
#include "svc/types.hpp"

namespace wfasic::svc {

struct ServiceConfig {
  engine::EngineConfig engine;
  /// Tenant lanes; empty means one default lane.
  std::vector<LaneConfig> lanes;
  /// Requests packed into one engine shard (the request-centric slice).
  std::size_t max_batch_pairs = 8;
  /// Unresolved shards allowed in flight at once (0 = 2 per device).
  std::size_t max_inflight_shards = 0;
  /// Modeled cycles one pump() advances the service clock by
  /// (0 = the engine device's poll quantum, keeping the clock in step
  /// with how far each device simulates per round).
  std::uint64_t tick_cycles = 0;
  DegradeMode degrade = DegradeMode::kDegradeToSoftware;
  /// kDegradeToSoftware: once every usable device already has this many
  /// shards pending, further shards go to the software backend instead of
  /// deepening hardware queues (0 = only degrade when the fleet is
  /// unusable). kRejectNew: ignored.
  std::size_t hw_backlog_limit = 0;
  HedgeConfig hedge;
  /// Checkpoint-evict long runs when deadline-critical work is waiting
  /// (types.hpp; requires engine.device.checkpoint-capable hardware —
  /// always true in simulation).
  PreemptConfig preempt;
  /// Request-scoped causal tracing (svc/trace.hpp): flight-recorder ring
  /// size, full-export mode, registry sampling cadence. Recording is
  /// zero-perturbation — modeled cycles and PMU counters are bit-identical
  /// with any setting here.
  TraceConfig trace;
};

class AlignService {
 public:
  explicit AlignService(const ServiceConfig& cfg);

  // --- Streaming client surface --------------------------------------------
  /// Admits one pair into `lane`. `deadline_cycle` is an absolute service
  /// clock value (0 = the lane's default span, or none). Never blocks:
  /// a full lane returns kWouldBlock, policy rejections kRejected.
  SubmitResult submit(unsigned lane, std::string a, std::string b,
                      std::uint64_t deadline_cycle = 0);
  /// Moves out every resolved completion (all lanes, resolution order).
  std::vector<ServiceCompletion> harvest();

  // --- Modeled time and progress -------------------------------------------
  [[nodiscard]] std::uint64_t now() const { return now_; }
  /// Jumps the service clock forward across an idle gap (arrivals are
  /// injected in modeled time). Must not move backwards.
  void advance_to(std::uint64_t cycle);
  /// One scheduling round; advances the clock by one tick. Returns true
  /// while queued or in-flight work remains.
  bool pump();
  /// Pumps until every admitted request has resolved.
  void drain();
  [[nodiscard]] bool busy() const;

  // --- Introspection --------------------------------------------------------
  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued(unsigned lane) const {
    return queues_.at(lane).size();
  }
  [[nodiscard]] std::size_t inflight_shards() const;
  [[nodiscard]] unsigned num_lanes() const {
    return static_cast<unsigned>(queues_.size());
  }
  [[nodiscard]] engine::Engine& engine() { return engine_; }
  [[nodiscard]] const engine::Engine& engine() const { return engine_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  // --- Observability (docs/OBSERVABILITY.md §3–4) ---------------------------
  /// The always-on flight recorder: every request/shard lifecycle
  /// transition, in a bounded preallocated ring.
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }
  /// Snapshots the recorder into a self-describing dump (serialize and
  /// analyze it with svc/trace_io.hpp or the wfasic-trace CLI).
  [[nodiscard]] TraceDump trace_dump() const;
  /// Re-exports engine metrics, per-lane stats, service-wide stats and
  /// per-tenant SLO attainment into `reg` under stable names. Clears the
  /// registry's instruments first so stale names cannot linger.
  void export_metrics(common::MetricsRegistry& reg) const;
  /// The service's own registry: refreshed by the periodic sampler
  /// (TraceConfig::sample_interval) and on demand via export_metrics.
  [[nodiscard]] common::MetricsRegistry& registry() { return registry_; }

 private:
  struct QueuedRequest {
    RequestId id = 0;
    gen::SequencePair pair;  ///< id field unused; shards renumber locally
    std::uint64_t arrival = 0;
    std::uint64_t deadline = 0;  ///< absolute, 0 = none
  };
  /// One engine submission belonging to a shard (primary, hedge or retry).
  struct Attempt {
    engine::JobHandle handle;
    unsigned backend = 0;  ///< device index; engine.num_devices() = software
    bool outstanding = true;
    bool hedge = false;  ///< launched as a hedge/retry, not the primary
  };
  /// A request-centric slice dispatched onto the engine: up to
  /// max_batch_pairs requests of one lane riding one BatchJob.
  struct Shard {
    std::uint64_t id = 0;
    unsigned lane = 0;
    std::vector<QueuedRequest> reqs;  ///< kept for hedge/retry re-submission
    std::uint64_t dispatch_cycle = 0;
    std::uint64_t est_cycles = 0;  ///< service-time estimate (hedging)
    std::vector<Attempt> attempts;
    unsigned attempt_count = 0;
    bool hedged = false;
    bool resolved = false;
    /// Checkpoint-evicted: the primary attempt is parked in the engine
    /// (preempt()), makes no progress, and does not occupy an in-flight
    /// slot. Deadline expiry cancels it; a hedge may still race and win.
    bool preempted = false;
  };

  // One pump() phase each, in call order.
  void shed_expired_queued();
  void cancel_expired_inflight();
  /// PreemptConfig: with urgent work waiting and no usable device free,
  /// checkpoint-evicts the oldest eligible non-urgent run (at most one
  /// per round) so the urgent shard can dispatch onto real hardware.
  void preempt_for_urgent();
  void dispatch();
  /// Re-dispatches parked shards once the urgent pressure has cleared and
  /// an in-flight slot is free; they continue from their eviction
  /// checkpoint (lossless).
  void resume_preempted();
  void check_hedges();
  void collect();

  void process_completion(Shard& shard, Attempt& attempt,
                          engine::Completion&& completion);
  /// Resolves every request from a completed run; requests the hardware
  /// flagged as failed (kPartial: unsupported read, band/score overflow)
  /// re-shard onto the software backend instead of surfacing an error.
  void resolve_completed(Shard& shard, const Attempt& attempt,
                         engine::Completion&& completion);
  void resolve_shed(Shard& shard);
  /// Places one attempt for `shard`: on the software backend, or on the
  /// best usable device excluding `avoid` (engine.num_devices() = no
  /// exclusion); falls back to software when no device qualifies.
  void launch_attempt(Shard& shard, bool software, unsigned avoid,
                      bool hedge);
  [[nodiscard]] std::uint64_t estimate_cycles(const Shard& shard) const;
  /// True while any non-parked request (queued or in flight) has a live
  /// deadline within preempt.urgent_span of the clock.
  [[nodiscard]] bool urgent_pressure() const;
  [[nodiscard]] bool fleet_usable() const;
  /// Usable device with the shortest queue, excluding `avoid`; returns
  /// engine.num_devices() when none qualifies.
  [[nodiscard]] unsigned pick_device_excluding(unsigned avoid);
  void emit(ServiceCompletion&& completion);

  /// Records one lifecycle event at the current service clock (or at
  /// `ts_override` for span kinds stamped at their start). Purely
  /// observational — called strictly after the decision it describes, so
  /// it can never feed back into scheduling or modeled time.
  static constexpr std::uint64_t kTraceNow = ~std::uint64_t{0};
  void trace(TraceEventKind kind, std::uint64_t id, unsigned lane,
             std::uint32_t device = RequestTraceEvent::kNoDevice,
             std::uint64_t aux0 = 0, std::uint64_t aux1 = 0,
             std::uint64_t ts_override = kTraceNow, std::uint64_t dur = 0);

  ServiceConfig cfg_;
  engine::Engine engine_;
  WfqScheduler wfq_;
  std::vector<std::deque<QueuedRequest>> queues_;
  /// Unresolved shards plus resolved ones still owed a losing-attempt
  /// completion (duplicate suppression), in dispatch order.
  std::deque<Shard> shards_;
  /// Residual shards created while iterating shards_ (resolve_completed
  /// re-slicing hardware-rejected pairs); merged after each collect().
  std::vector<Shard> spawned_;
  std::vector<ServiceCompletion> completions_;
  ServiceStats stats_;
  std::uint64_t now_ = 0;
  std::uint64_t tick_ = 0;
  std::size_t max_inflight_ = 0;
  RequestId next_request_ = 1;
  std::uint64_t next_shard_ = 1;
  FlightRecorder recorder_;
  common::MetricsRegistry registry_;
  std::uint64_t last_sample_ = 0;  ///< periodic sampler watermark
};

}  // namespace wfasic::svc
