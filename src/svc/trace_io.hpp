// Request-trace serialization, validation and causal-chain explanation
// (docs/OBSERVABILITY.md §3).
//
// The on-disk format is a versioned line-oriented text dump — trivially
// greppable, no JSON parser needed to read it back:
//
//   # wfasic-request-trace v1
//   # meta now 4096
//   # meta lanes 2
//   # meta devices 2
//   # meta recorded 117 dropped 0
//   # meta anomalies 1 last deadline-miss 3072
//   E <ts> <dur> <kind> <id> <lane> <device> <aux0> <aux1>
//
// `device` is -1 when no device was involved and num_devices for the
// software backend. One parse/validate/explain implementation serves the
// wfasic-trace CLI, bench/service_latency --trace and the tests, so a
// dump any producer writes is readable by every consumer.
//
// Everything here is offline analysis of an already-captured dump; none
// of it runs while the service is pumping, so it cannot perturb modeled
// time.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace_json.hpp"
#include "sim/trace.hpp"
#include "svc/trace.hpp"
#include "svc/types.hpp"

namespace wfasic::svc {

[[nodiscard]] inline std::optional<TraceEventKind> trace_event_kind_from_name(
    const std::string& name) {
  for (int k = 0; k <= static_cast<int>(TraceEventKind::kShed); ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == trace_event_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

// --- Serialization ----------------------------------------------------------

inline void write_trace_dump(const TraceDump& dump, std::ostream& os) {
  os << "# wfasic-request-trace v" << TraceDump::kVersion << "\n";
  os << "# meta now " << dump.now << "\n";
  os << "# meta lanes " << dump.lanes << "\n";
  os << "# meta devices " << dump.devices << "\n";
  os << "# meta recorded " << dump.recorded << " dropped " << dump.dropped
     << "\n";
  os << "# meta anomalies " << dump.anomalies << " last "
     << anomaly_kind_name(dump.last_anomaly) << " "
     << dump.last_anomaly_cycle << "\n";
  for (const RequestTraceEvent& ev : dump.events) {
    const long long device =
        ev.device == RequestTraceEvent::kNoDevice
            ? -1LL
            : static_cast<long long>(ev.device);
    os << "E " << ev.ts << " " << ev.dur << " "
       << trace_event_kind_name(ev.kind) << " " << ev.id << " " << ev.lane
       << " " << device << " " << ev.aux0 << " " << ev.aux1 << "\n";
  }
}

[[nodiscard]] inline std::string trace_dump_to_string(const TraceDump& dump) {
  std::ostringstream os;
  write_trace_dump(dump, os);
  return os.str();
}

/// Returns false (without aborting) when the file cannot be opened — a
/// failed dump must never take the service down with it.
inline bool write_trace_dump_file(const TraceDump& dump,
                                  const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_trace_dump(dump, os);
  return os.good();
}

// --- Parsing ----------------------------------------------------------------

/// Parses a dump from `is`. On failure returns false and (optionally)
/// explains why in `*error`, naming the offending line.
inline bool parse_trace_dump(std::istream& is, TraceDump& out,
                             std::string* error = nullptr) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  out = TraceDump{};
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    if (line[0] == '#') {
      std::string hash, word;
      ls >> hash >> word;
      if (!saw_header) {
        if (word != "wfasic-request-trace") {
          return fail(line_no, "not a wfasic-request-trace dump");
        }
        std::string version;
        ls >> version;
        if (version != "v" + std::to_string(TraceDump::kVersion)) {
          return fail(line_no, "unsupported version '" + version + "'");
        }
        saw_header = true;
        continue;
      }
      if (word != "meta") continue;  // unknown comment: ignore
      std::string key;
      ls >> key;
      if (key == "now") {
        ls >> out.now;
      } else if (key == "lanes") {
        ls >> out.lanes;
      } else if (key == "devices") {
        ls >> out.devices;
      } else if (key == "recorded") {
        std::string dk;
        ls >> out.recorded >> dk >> out.dropped;
      } else if (key == "anomalies") {
        std::string lk, name;
        ls >> out.anomalies >> lk >> name >> out.last_anomaly_cycle;
        for (int k = 0; k <= static_cast<int>(AnomalyKind::kQuarantine);
             ++k) {
          if (name == anomaly_kind_name(static_cast<AnomalyKind>(k))) {
            out.last_anomaly = static_cast<AnomalyKind>(k);
          }
        }
      }
      // Unknown meta keys are ignored: forward compatibility.
      continue;
    }
    if (!saw_header) return fail(line_no, "events before the header");
    std::string tag, kind_name;
    long long device = -1;
    RequestTraceEvent ev;
    ls >> tag;
    if (tag != "E") return fail(line_no, "unknown record '" + tag + "'");
    ls >> ev.ts >> ev.dur >> kind_name >> ev.id >> ev.lane >> device >>
        ev.aux0 >> ev.aux1;
    if (!ls) return fail(line_no, "malformed event record");
    const auto kind = trace_event_kind_from_name(kind_name);
    if (!kind) return fail(line_no, "unknown event kind '" + kind_name + "'");
    ev.kind = *kind;
    ev.device = device < 0 ? RequestTraceEvent::kNoDevice
                           : static_cast<std::uint32_t>(device);
    out.events.push_back(ev);
  }
  if (!saw_header) return fail(0, "empty input (no header)");
  return true;
}

inline bool parse_trace_dump_file(const std::string& path, TraceDump& out,
                                  std::string* error = nullptr) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return parse_trace_dump(is, out, error);
}

// --- Validation -------------------------------------------------------------

namespace trace_detail {

[[nodiscard]] inline bool is_terminal(TraceEventKind k) {
  return k == TraceEventKind::kComplete ||
         k == TraceEventKind::kDeadlineMiss || k == TraceEventKind::kShed;
}

[[nodiscard]] inline bool is_admission(TraceEventKind k) {
  return k == TraceEventKind::kAdmit || k == TraceEventKind::kShedAdmission;
}

}  // namespace trace_detail

/// Schema + invariant validation. Always checked: timestamps within the
/// dump's clock bound, lane/device indices within the declared topology.
/// Additionally, for complete dumps (dropped == 0): at most one terminal
/// event per request, every terminal preceded by that request's admission
/// event, and every queue-wait joined to a recorded dispatch. Truncated
/// rings skip the pairing rules — the admission may have been overwritten.
inline bool validate_trace_dump(const TraceDump& dump,
                                std::string* error = nullptr) {
  const auto fail = [&](std::size_t idx, const std::string& why) {
    if (error != nullptr) {
      *error = "event " + std::to_string(idx) + " (" +
               trace_event_kind_name(dump.events[idx].kind) + "): " + why;
    }
    return false;
  };
  std::map<std::uint64_t, std::size_t> admitted;   // request -> event idx
  std::map<std::uint64_t, std::size_t> terminal;   // request -> event idx
  std::map<std::uint64_t, std::size_t> dispatched; // shard -> event idx
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const RequestTraceEvent& ev = dump.events[i];
    if (ev.ts > dump.now) return fail(i, "timestamp beyond the dump clock");
    if (ev.dur != 0 && ev.ts + ev.dur > dump.now) {
      return fail(i, "span extends beyond the dump clock");
    }
    if (dump.lanes != 0 && ev.lane >= dump.lanes) {
      return fail(i, "lane out of range");
    }
    if (ev.device != RequestTraceEvent::kNoDevice && ev.device > dump.devices) {
      return fail(i, "device out of range");
    }
    if (trace_detail::is_admission(ev.kind) && ev.id != 0) {
      admitted.emplace(ev.id, i);
    }
    if (ev.kind == TraceEventKind::kDispatch) dispatched.emplace(ev.id, i);
    if (trace_detail::is_terminal(ev.kind)) {
      const auto [it, inserted] = terminal.emplace(ev.id, i);
      if (!inserted) return fail(i, "duplicate terminal event for request");
    }
  }
  if (!dump.complete()) return true;  // ring truncated: pairing is best-effort
  for (const auto& [id, idx] : terminal) {
    const auto adm = admitted.find(id);
    if (adm == admitted.end()) {
      return fail(idx, "terminal without an admission event");
    }
    if (dump.events[adm->second].ts > dump.events[idx].ts) {
      return fail(idx, "terminal precedes its admission");
    }
  }
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const RequestTraceEvent& ev = dump.events[i];
    if (ev.kind == TraceEventKind::kQueueWait &&
        dispatched.find(ev.aux0) == dispatched.end()) {
      return fail(i, "queue-wait names an unrecorded shard");
    }
  }
  return true;
}

// --- Summary ----------------------------------------------------------------

struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t kind_counts[static_cast<int>(TraceEventKind::kShed) + 1] = {};
  std::uint64_t requests_admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t max_latency = 0;        ///< kComplete/kDeadlineMiss aux0
  std::uint64_t max_queue_wait = 0;

  [[nodiscard]] std::uint64_t count(TraceEventKind k) const {
    return kind_counts[static_cast<int>(k)];
  }
};

[[nodiscard]] inline TraceSummary summarize_trace(const TraceDump& dump) {
  TraceSummary s;
  s.events = dump.events.size();
  for (const RequestTraceEvent& ev : dump.events) {
    ++s.kind_counts[static_cast<int>(ev.kind)];
    switch (ev.kind) {
      case TraceEventKind::kAdmit:
      case TraceEventKind::kShedAdmission:
        ++s.requests_admitted;
        break;
      case TraceEventKind::kComplete:
        ++s.completed;
        s.max_latency = std::max(s.max_latency, ev.aux0);
        break;
      case TraceEventKind::kDeadlineMiss:
        ++s.deadline_missed;
        s.max_latency = std::max(s.max_latency, ev.aux0);
        break;
      case TraceEventKind::kShed:
        ++s.shed;
        break;
      case TraceEventKind::kQueueWait:
        s.max_queue_wait = std::max(s.max_queue_wait, ev.dur);
        break;
      default:
        break;
    }
  }
  return s;
}

[[nodiscard]] inline std::vector<std::string> format_trace_summary(
    const TraceDump& dump) {
  const TraceSummary s = summarize_trace(dump);
  std::vector<std::string> lines;
  lines.push_back("events " + std::to_string(s.events) + " (recorded " +
                  std::to_string(dump.recorded) + ", dropped " +
                  std::to_string(dump.dropped) + ")");
  lines.push_back("clock " + std::to_string(dump.now) + "  lanes " +
                  std::to_string(dump.lanes) + "  devices " +
                  std::to_string(dump.devices));
  lines.push_back(
      "requests " + std::to_string(s.requests_admitted) + " admitted, " +
      std::to_string(s.completed) + " ok, " +
      std::to_string(s.deadline_missed) + " deadline-missed, " +
      std::to_string(s.shed) + " shed");
  lines.push_back("anomalies " + std::to_string(dump.anomalies) +
                  (dump.anomalies != 0
                       ? std::string(" (last ") +
                             anomaly_kind_name(dump.last_anomaly) + " @" +
                             std::to_string(dump.last_anomaly_cycle) + ")"
                       : std::string()));
  for (int k = 0; k <= static_cast<int>(TraceEventKind::kShed); ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (s.count(kind) == 0) continue;
    lines.push_back("  " + std::string(trace_event_kind_name(kind)) + " " +
                    std::to_string(s.count(kind)));
  }
  return lines;
}

// --- Causal-chain explanation -----------------------------------------------

/// The reconstructed story of one request: its admission, its queue wait,
/// every event of the shard that carried it, and its terminal — in
/// timestamp order, ready to print. Empty when the dump holds no event
/// for the request (e.g. overwritten out of a truncated ring).
struct RequestExplanation {
  RequestId request = 0;
  std::uint64_t shard = 0;                ///< 0 = never dispatched
  std::vector<RequestTraceEvent> chain;   ///< ts-ordered causal chain
  std::string verdict;                    ///< one-line "why" summary
};

[[nodiscard]] inline std::string format_trace_event(
    const RequestTraceEvent& ev) {
  std::string out = "@" + std::to_string(ev.ts);
  out += " " + std::string(trace_event_kind_name(ev.kind));
  out += " id=" + std::to_string(ev.id);
  out += " lane=" + std::to_string(ev.lane);
  if (ev.device != RequestTraceEvent::kNoDevice) {
    out += " device=" + std::to_string(ev.device);
  }
  if (ev.dur != 0) out += " dur=" + std::to_string(ev.dur);
  if (ev.aux0 != 0) out += " aux0=" + std::to_string(ev.aux0);
  if (ev.aux1 != 0) out += " aux1=" + std::to_string(ev.aux1);
  return out;
}

[[nodiscard]] inline RequestExplanation explain_request(const TraceDump& dump,
                                                        RequestId id) {
  RequestExplanation ex;
  ex.request = id;
  // Pass 1: the request-scoped events, and the shard the request rode
  // (the queue-wait event carries the request → shard join).
  for (const RequestTraceEvent& ev : dump.events) {
    if (ev.id != id) continue;
    switch (ev.kind) {
      case TraceEventKind::kAdmit:
      case TraceEventKind::kShedAdmission:
      case TraceEventKind::kQueueWait:
      case TraceEventKind::kComplete:
      case TraceEventKind::kDeadlineMiss:
      case TraceEventKind::kShed:
        ex.chain.push_back(ev);
        if (ev.kind == TraceEventKind::kQueueWait) ex.shard = ev.aux0;
        break;
      default:
        break;
    }
  }
  // Pass 2: everything that happened to that shard.
  if (ex.shard != 0) {
    for (const RequestTraceEvent& ev : dump.events) {
      if (ev.id != ex.shard) continue;
      switch (ev.kind) {
        case TraceEventKind::kDispatch:
        case TraceEventKind::kAttemptLaunch:
        case TraceEventKind::kHedgeLaunch:
        case TraceEventKind::kRetry:
        case TraceEventKind::kSwDegrade:
        case TraceEventKind::kCancel:
        case TraceEventKind::kPreemptPark:
        case TraceEventKind::kPreemptResume:
        case TraceEventKind::kAttemptFailed:
        case TraceEventKind::kDeviceRun:
        case TraceEventKind::kCheckpoint:
        case TraceEventKind::kRestore:
        case TraceEventKind::kHedgeWin:
        case TraceEventKind::kHedgeLose:
          ex.chain.push_back(ev);
          break;
        default:
          break;
      }
    }
  }
  std::stable_sort(ex.chain.begin(), ex.chain.end(),
                   [](const RequestTraceEvent& a, const RequestTraceEvent& b) {
                     // queue-wait is stamped at arrival; order spans by
                     // their *end* so the chain reads causally.
                     return a.ts + a.dur < b.ts + b.dur;
                   });

  // Verdict: name the dominant contributor to the request's latency.
  std::uint64_t queue_wait = 0, device_run = 0;
  std::uint64_t failures = 0, retries = 0, preemptions = 0, restores = 0;
  const RequestTraceEvent* term = nullptr;
  for (const RequestTraceEvent& ev : ex.chain) {
    switch (ev.kind) {
      case TraceEventKind::kQueueWait: queue_wait = ev.dur; break;
      case TraceEventKind::kDeviceRun: device_run += ev.dur; break;
      case TraceEventKind::kAttemptFailed: ++failures; break;
      case TraceEventKind::kRetry: ++retries; break;
      case TraceEventKind::kPreemptPark: ++preemptions; break;
      case TraceEventKind::kRestore: restores += ev.aux0; break;
      case TraceEventKind::kComplete:
      case TraceEventKind::kDeadlineMiss:
      case TraceEventKind::kShed:
        term = &ev;
        break;
      default: break;
    }
  }
  if (ex.chain.empty()) {
    ex.verdict = "request " + std::to_string(id) + ": no events in the dump";
    return ex;
  }
  std::string why;
  if (term == nullptr) {
    why = "still in flight at dump time";
  } else if (term->kind == TraceEventKind::kComplete) {
    why = "completed in " + std::to_string(term->aux0) + " cycles";
  } else if (term->kind == TraceEventKind::kDeadlineMiss) {
    why = "missed its deadline by " + std::to_string(term->aux0) + " cycles";
  } else {
    why = "shed without a result";
  }
  std::string cause;
  if (failures != 0 || retries != 0) {
    cause = std::to_string(failures) + " failed attempt(s), " +
            std::to_string(retries) + " retr(ies)";
  } else if (preemptions != 0) {
    cause = "preempted " + std::to_string(preemptions) + " time(s)";
  } else if (restores != 0) {
    cause = std::to_string(restores) + " checkpoint restore(s)";
  } else if (queue_wait > device_run) {
    cause = "dominated by queue wait (" + std::to_string(queue_wait) +
            " cycles waiting vs " + std::to_string(device_run) +
            " running)";
  } else if (device_run != 0) {
    cause = "dominated by device time (" + std::to_string(device_run) +
            " cycles running vs " + std::to_string(queue_wait) +
            " waiting)";
  } else {
    cause = "never dispatched";
  }
  ex.verdict = "request " + std::to_string(id) + " " + why + ": " + cause;
  return ex;
}

/// The request worth explaining first: the worst deadline miss (largest
/// lateness), else the slowest completion, else 0 when the dump holds no
/// terminal events.
[[nodiscard]] inline RequestId worst_request(const TraceDump& dump) {
  RequestId worst_miss = 0, worst_ok = 0;
  std::uint64_t miss_late = 0, ok_latency = 0;
  for (const RequestTraceEvent& ev : dump.events) {
    if (ev.kind == TraceEventKind::kDeadlineMiss && ev.aux0 >= miss_late) {
      miss_late = ev.aux0;
      worst_miss = ev.id;
    }
    if (ev.kind == TraceEventKind::kComplete && ev.aux0 >= ok_latency) {
      ok_latency = ev.aux0;
      worst_ok = ev.id;
    }
  }
  return worst_miss != 0 ? worst_miss : worst_ok;
}

// --- Perfetto rendering -----------------------------------------------------

/// Renders the dump in the repo's existing Chrome trace-event JSON format
/// (common/trace_json.hpp), with one track per tenant lane (admission,
/// queue waits and terminals) and one per device plus the software
/// backend (shard-scoped events). Loadable in Perfetto next to the
/// device-level cycle traces — both clocks are modeled cycles.
[[nodiscard]] inline std::string trace_dump_to_perfetto_json(
    const TraceDump& dump) {
  sim::TraceSink sink;
  sink.set_enabled(true);
  std::vector<std::uint32_t> lane_tracks;
  for (unsigned l = 0; l < std::max(dump.lanes, 1u); ++l) {
    lane_tracks.push_back(sink.register_track("lane " + std::to_string(l)));
  }
  std::vector<std::uint32_t> device_tracks;
  for (unsigned d = 0; d < dump.devices; ++d) {
    device_tracks.push_back(
        sink.register_track("device " + std::to_string(d)));
  }
  device_tracks.push_back(sink.register_track("software"));
  const std::uint32_t svc_track = sink.register_track("service");
  for (const RequestTraceEvent& ev : dump.events) {
    std::uint32_t track = svc_track;
    if (ev.device != RequestTraceEvent::kNoDevice &&
        ev.device < device_tracks.size()) {
      track = device_tracks[ev.device];
    } else if (ev.lane < lane_tracks.size()) {
      track = lane_tracks[ev.lane];
    }
    const char* name = trace_event_kind_name(ev.kind);
    if (ev.dur != 0) {
      sink.span(track, name, "svc", ev.ts, ev.ts + ev.dur - 1, ev.id);
    } else {
      sink.instant(track, name, "svc", ev.ts, ev.id);
    }
  }
  return common::to_chrome_trace_json(sink);
}

}  // namespace wfasic::svc
