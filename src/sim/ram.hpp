// On-chip RAM models.
//
// The FPGA prototype used dual-port RAMs (one read port, one write port);
// the ASIC replaces them with high-performance *single-port* memory macros
// behind a wrapper that preserves the dual-port protocol (§4.6). Both are
// modelled here, with per-port access statistics and same-cycle conflict
// accounting so the timing model can charge the wrapper's serialisation.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "common/ecc.hpp"
#include "sim/scheduler.hpp"

namespace wfasic::sim {

/// Dual-port RAM: one independent read port and one write port; any number
/// of accesses per call-site, but at most one read + one write per cycle is
/// asserted when cycle stamps are supplied.
template <typename Word>
class DualPortRam {
 public:
  DualPortRam(std::string name, std::size_t depth, Word init = Word{})
      : name_(std::move(name)), words_(depth, init), init_(init) {}

  [[nodiscard]] std::size_t depth() const { return words_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Word read(std::size_t addr) const {
    WFASIC_REQUIRE(addr < words_.size(), "DualPortRam::read out of range");
    ++reads_;
    if (ecc_) scrub(addr);
    return words_[addr];
  }

  void write(std::size_t addr, Word value) {
    WFASIC_REQUIRE(addr < words_.size(), "DualPortRam::write out of range");
    ++writes_;
    words_[addr] = value;
    if (ecc_) check_[addr] = ecc::secded_encode(word_image(addr));
  }

  void fill(Word value) {
    for (Word& w : words_) w = value;
    if (ecc_) refresh_checks();
  }
  void reset() { fill(init_); }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// Turn on per-word SECDED check bytes over the current contents.
  /// Idempotent; requires a word type that fits the 64-bit codec.
  void enable_ecc() {
    static_assert(sizeof(Word) <= 8 && std::is_trivially_copyable_v<Word>,
                  "DualPortRam ECC models words up to 64 bits");
    if (ecc_) return;
    ecc_ = true;
    check_.assign(words_.size(), 0);
    refresh_checks();
  }

  [[nodiscard]] bool ecc_enabled() const { return ecc_; }

  /// Fault-injection hook: flips one bit of a word's stored image without
  /// touching its check byte (an SRAM upset).
  void corrupt_bit(std::size_t addr, unsigned bit) {
    WFASIC_REQUIRE(addr < words_.size() && bit < sizeof(Word) * 8,
                   "DualPortRam::corrupt_bit out of range");
    auto* bytes = reinterpret_cast<std::uint8_t*>(&words_[addr]);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }

  [[nodiscard]] std::uint64_t ecc_corrected() const { return ecc_corrected_; }
  [[nodiscard]] std::uint64_t ecc_uncorrectable() const {
    return ecc_uncorrectable_;
  }

  /// Sticky uncorrectable-read flag; consuming it clears it.
  [[nodiscard]] bool take_uncorrectable() const {
    const bool pending = pending_uncorrectable_;
    pending_uncorrectable_ = false;
    return pending;
  }

  /// Storage bits (for the ASIC area model), side-band check bits
  /// included when ECC is on.
  [[nodiscard]] std::uint64_t bits() const {
    const std::uint64_t per_word =
        sizeof(Word) * 8 + (ecc_ ? ecc::kSecdedCheckBitsPerWord : 0);
    return static_cast<std::uint64_t>(words_.size()) * per_word;
  }

 private:
  [[nodiscard]] std::uint64_t word_image(std::size_t addr) const {
    std::uint64_t image = 0;
    std::memcpy(&image, &words_[addr], sizeof(Word));
    return image;
  }

  void refresh_checks() {
    for (std::size_t addr = 0; addr < words_.size(); ++addr) {
      check_[addr] = ecc::secded_encode(word_image(addr));
    }
  }

  // Scrub-on-read repairs storage without changing the observable
  // (corrected) contents, hence logically const.
  void scrub(std::size_t addr) const {
    const ecc::EccDecode decode =
        ecc::secded_decode(word_image(addr), check_[addr]);
    switch (decode.state) {
      case ecc::EccState::kClean:
        break;
      case ecc::EccState::kCorrected:
        std::memcpy(&words_[addr], &decode.data, sizeof(Word));
        ++ecc_corrected_;
        break;
      case ecc::EccState::kUncorrectable:
        ++ecc_uncorrectable_;
        pending_uncorrectable_ = true;
        break;
    }
  }

  std::string name_;
  mutable std::vector<Word> words_;
  Word init_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  bool ecc_ = false;
  mutable std::vector<std::uint8_t> check_;
  mutable std::uint64_t ecc_corrected_ = 0;
  mutable std::uint64_t ecc_uncorrectable_ = 0;
  mutable bool pending_uncorrectable_ = false;
};

/// Single-port RAM wrapped to look dual-ported (§4.6): a read and a write
/// in the same cycle are serialised, costing one extra cycle. The wrapper
/// counts conflicts so the Aligner timing model can charge them; the paper
/// notes the design "ensure[s] that read and write requests to a RAM are
/// not triggered simultaneously", so conflicts should be zero in normal
/// operation — the counter is an invariant check.
template <typename Word>
class SinglePortRamWrapper {
 public:
  SinglePortRamWrapper(std::string name, std::size_t depth, Word init = Word{})
      : ram_(std::move(name), depth, init) {}

  [[nodiscard]] Word read(cycle_t cycle, std::size_t addr) {
    note_access(cycle);
    return ram_.read(addr);
  }

  void write(cycle_t cycle, std::size_t addr, Word value) {
    note_access(cycle);
    ram_.write(addr, value);
  }

  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }
  [[nodiscard]] const DualPortRam<Word>& inner() const { return ram_; }
  DualPortRam<Word>& inner() { return ram_; }

 private:
  void note_access(cycle_t cycle) {
    if (have_last_ && cycle == last_cycle_) ++conflicts_;
    have_last_ = true;
    last_cycle_ = cycle;
  }

  DualPortRam<Word> ram_;
  bool have_last_ = false;
  cycle_t last_cycle_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace wfasic::sim
