// On-chip RAM models.
//
// The FPGA prototype used dual-port RAMs (one read port, one write port);
// the ASIC replaces them with high-performance *single-port* memory macros
// behind a wrapper that preserves the dual-port protocol (§4.6). Both are
// modelled here, with per-port access statistics and same-cycle conflict
// accounting so the timing model can charge the wrapper's serialisation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "sim/scheduler.hpp"

namespace wfasic::sim {

/// Dual-port RAM: one independent read port and one write port; any number
/// of accesses per call-site, but at most one read + one write per cycle is
/// asserted when cycle stamps are supplied.
template <typename Word>
class DualPortRam {
 public:
  DualPortRam(std::string name, std::size_t depth, Word init = Word{})
      : name_(std::move(name)), words_(depth, init), init_(init) {}

  [[nodiscard]] std::size_t depth() const { return words_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Word read(std::size_t addr) const {
    WFASIC_REQUIRE(addr < words_.size(), "DualPortRam::read out of range");
    ++reads_;
    return words_[addr];
  }

  void write(std::size_t addr, Word value) {
    WFASIC_REQUIRE(addr < words_.size(), "DualPortRam::write out of range");
    ++writes_;
    words_[addr] = value;
  }

  void fill(Word value) {
    for (Word& w : words_) w = value;
  }
  void reset() { fill(init_); }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// Storage bits (for the ASIC area model).
  [[nodiscard]] std::uint64_t bits() const {
    return static_cast<std::uint64_t>(words_.size()) * sizeof(Word) * 8;
  }

 private:
  std::string name_;
  std::vector<Word> words_;
  Word init_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Single-port RAM wrapped to look dual-ported (§4.6): a read and a write
/// in the same cycle are serialised, costing one extra cycle. The wrapper
/// counts conflicts so the Aligner timing model can charge them; the paper
/// notes the design "ensure[s] that read and write requests to a RAM are
/// not triggered simultaneously", so conflicts should be zero in normal
/// operation — the counter is an invariant check.
template <typename Word>
class SinglePortRamWrapper {
 public:
  SinglePortRamWrapper(std::string name, std::size_t depth, Word init = Word{})
      : ram_(std::move(name), depth, init) {}

  [[nodiscard]] Word read(cycle_t cycle, std::size_t addr) {
    note_access(cycle);
    return ram_.read(addr);
  }

  void write(cycle_t cycle, std::size_t addr, Word value) {
    note_access(cycle);
    ram_.write(addr, value);
  }

  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }
  [[nodiscard]] const DualPortRam<Word>& inner() const { return ram_; }
  DualPortRam<Word>& inner() { return ram_; }

 private:
  void note_access(cycle_t cycle) {
    if (have_last_ && cycle == last_cycle_) ++conflicts_;
    have_last_ = true;
    last_cycle_ = cycle;
  }

  DualPortRam<Word> ram_;
  bool have_last_ = false;
  cycle_t last_cycle_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace wfasic::sim
