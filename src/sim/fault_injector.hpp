// Deterministic, seeded fault-injection framework for the accelerator
// model (the verification-campaign methodology of §5.1's broken-data test,
// generalised). Faults are scheduled up front from a (seed, config) pair,
// so a campaign replays bit-identically: the same seed produces the same
// fault schedule, and — because every hook keys off deterministic
// simulator state (cycle counts and DMA beat indices) — the same outcome.
//
// Supported fault classes:
//  - kMemBitFlip:     flip one bit of one byte of main memory at a cycle
//                     (models DRAM corruption of the input/output regions);
//  - kAxiError:       an AXI SLVERR/DECERR response on a DMA read beat;
//  - kDropBeat:       a DMA read beat is lost on the bus;
//  - kDuplicateBeat:  a DMA read beat is delivered twice;
//  - kBeatCorrupt:    in-flight bit flip on a DMA read beat's payload;
//  - kFifoStall:      a FIFO's ready deasserts for a window of cycles
//                     (duration 0 = forever: a hard hang the watchdog must
//                     catch);
//  - kRamBitFlip:     flip one bit (or an adjacent pair, bits = 2) of a
//                     live wavefront-RAM cell inside an Aligner at a cycle
//                     (models an SRAM upset; SECDED corrects singles,
//                     detects doubles);
//  - kWriteBeatCorrupt: in-flight bit flip on a DMA *write* beat's payload
//                     (result path corruption — only the CRC footer can
//                     catch it);
//  - kWriteBeatDrop:  a DMA write beat is lost on the bus (the output
//                     window keeps its previous contents at that slot).
//
// The injector is passive: the Accelerator drives set_now() once per cycle
// and asks for due events; the DMA and FIFOs consult it through narrow
// hooks. A null injector everywhere means zero-overhead normal operation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "common/prng.hpp"
#include "sim/scheduler.hpp"

namespace wfasic::sim {

enum class FaultClass : std::uint8_t {
  kMemBitFlip,
  kAxiError,
  kDropBeat,
  kDuplicateBeat,
  kBeatCorrupt,
  kFifoStall,
  kRamBitFlip,
  kWriteBeatCorrupt,
  kWriteBeatDrop,
};

/// Which FIFO a kFifoStall event throttles.
enum class FaultFifo : std::uint8_t { kInput, kOutput };

/// One scheduled fault. Cycle-keyed events (`at`) fire when the simulator
/// reaches that cycle; beat-keyed events (`beat`) fire when the DMA issues
/// that read beat index, regardless of when that happens.
struct FaultEvent {
  FaultClass cls = FaultClass::kMemBitFlip;
  cycle_t at = 0;            ///< cycle-keyed classes: activation cycle
  std::uint64_t addr = 0;    ///< kMemBitFlip: byte address;
                             ///< kRamBitFlip: row selector (mod row count)
  std::uint64_t beat = 0;    ///< beat-keyed classes: DMA beat index (read
                             ///< or write path per class); kRamBitFlip:
                             ///< target aligner ordinal (mod aligner count)
  unsigned bit = 0;          ///< bit index for flips
  unsigned bits = 1;         ///< flipped bits (2 = adjacent double flip,
                             ///< uncorrectable under SECDED)
  unsigned duration = 0;     ///< kFifoStall: cycles; 0 = stalled forever
  FaultFifo fifo = FaultFifo::kInput;
  bool fired = false;        ///< set once the event has been applied

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Outcome of asking the injector about one DMA read beat.
struct DmaBeatFault {
  bool bus_error = false;  ///< respond SLVERR/DECERR instead of data
  bool drop = false;       ///< the beat is lost
  bool duplicate = false;  ///< the beat is delivered twice
  unsigned corrupt_byte = 0;
  std::uint8_t corrupt_mask = 0;  ///< non-zero: XOR into data[corrupt_byte]
};

class FaultInjector {
 public:
  /// Knobs of a randomly generated campaign. Counts select how many events
  /// of each class are drawn; positions/cycles are drawn uniformly from
  /// the given windows with the campaign PRNG.
  struct CampaignConfig {
    std::uint64_t mem_begin = 0;   ///< bit-flip target region [begin, end)
    std::uint64_t mem_end = 0;
    cycle_t cycle_window = 50'000; ///< cycle-keyed events land in [0, window)
    std::uint64_t beat_window = 256;  ///< beat-keyed events land in [0, window)
    unsigned mem_bit_flips = 0;
    unsigned axi_errors = 0;
    unsigned dropped_beats = 0;
    unsigned duplicated_beats = 0;
    unsigned beat_corruptions = 0;
    unsigned fifo_stalls = 0;
    unsigned stall_cycles = 64;    ///< duration of each transient stall
    // PR 4 classes. Drawn after the ones above so campaigns from earlier
    // seeds replay bit-identically when these stay zero.
    unsigned mem_double_flips = 0;       ///< kMemBitFlip with bits = 2
    unsigned ram_bit_flips = 0;          ///< kRamBitFlip (single bit)
    unsigned ram_double_flips = 0;       ///< kRamBitFlip with bits = 2
    unsigned write_beat_corruptions = 0; ///< kWriteBeatCorrupt
    unsigned write_beat_drops = 0;       ///< kWriteBeatDrop
    std::uint64_t ram_row_window = 4096; ///< kRamBitFlip row selector range
    unsigned ram_targets = 16;           ///< kRamBitFlip aligner draw range
  };

  FaultInjector() = default;

  /// Deterministically expands (seed, config) into a fault schedule. Two
  /// calls with equal arguments produce bit-identical schedules.
  static FaultInjector make_campaign(std::uint64_t seed,
                                     const CampaignConfig& cfg) {
    FaultInjector injector;
    Prng prng(seed);
    const auto draw_cycle = [&] {
      return cfg.cycle_window > 0 ? prng.next_below(cfg.cycle_window) : 0;
    };
    const auto draw_beat = [&] {
      return cfg.beat_window > 0 ? prng.next_below(cfg.beat_window) : 0;
    };
    for (unsigned i = 0; i < cfg.mem_bit_flips; ++i) {
      WFASIC_REQUIRE(cfg.mem_end > cfg.mem_begin,
                     "FaultInjector: bit-flip campaign needs a memory region");
      FaultEvent ev;
      ev.cls = FaultClass::kMemBitFlip;
      ev.at = draw_cycle();
      ev.addr =
          cfg.mem_begin + prng.next_below(cfg.mem_end - cfg.mem_begin);
      ev.bit = static_cast<unsigned>(prng.next_below(8));
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.axi_errors; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kAxiError;
      ev.beat = draw_beat();
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.dropped_beats; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kDropBeat;
      ev.beat = draw_beat();
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.duplicated_beats; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kDuplicateBeat;
      ev.beat = draw_beat();
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.beat_corruptions; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kBeatCorrupt;
      ev.beat = draw_beat();
      ev.bit = static_cast<unsigned>(prng.next_below(128));
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.fifo_stalls; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kFifoStall;
      ev.at = draw_cycle();
      ev.duration = cfg.stall_cycles;
      ev.fifo = prng.next_bool(0.5) ? FaultFifo::kInput : FaultFifo::kOutput;
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.mem_double_flips; ++i) {
      WFASIC_REQUIRE(cfg.mem_end > cfg.mem_begin,
                     "FaultInjector: bit-flip campaign needs a memory region");
      FaultEvent ev;
      ev.cls = FaultClass::kMemBitFlip;
      ev.at = draw_cycle();
      ev.addr =
          cfg.mem_begin + prng.next_below(cfg.mem_end - cfg.mem_begin);
      ev.bit = static_cast<unsigned>(prng.next_below(7));
      ev.bits = 2;  // adjacent pair: uncorrectable under SECDED
      injector.schedule(ev);
    }
    const auto draw_ram_flip = [&](unsigned bits) {
      FaultEvent ev;
      ev.cls = FaultClass::kRamBitFlip;
      ev.at = draw_cycle();
      ev.addr = prng.next_below(cfg.ram_row_window);
      ev.beat = prng.next_below(cfg.ram_targets);
      // One wavefront cell = three 32-bit words (M, I, D).
      ev.bit = static_cast<unsigned>(prng.next_below(bits == 2 ? 95 : 96));
      ev.bits = bits;
      injector.schedule(ev);
    };
    for (unsigned i = 0; i < cfg.ram_bit_flips; ++i) draw_ram_flip(1);
    for (unsigned i = 0; i < cfg.ram_double_flips; ++i) draw_ram_flip(2);
    for (unsigned i = 0; i < cfg.write_beat_corruptions; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kWriteBeatCorrupt;
      ev.beat = draw_beat();
      ev.bit = static_cast<unsigned>(prng.next_below(128));
      injector.schedule(ev);
    }
    for (unsigned i = 0; i < cfg.write_beat_drops; ++i) {
      FaultEvent ev;
      ev.cls = FaultClass::kWriteBeatDrop;
      ev.beat = draw_beat();
      injector.schedule(ev);
    }
    return injector;
  }

  void schedule(FaultEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t fired_count() const {
    std::size_t fired = 0;
    for (const FaultEvent& ev : events_) fired += ev.fired ? 1 : 0;
    return fired;
  }

  // --- snapshot hooks (sim/snapshot.hpp) -----------------------------------

  /// True when `other` carries the same fault schedule, ignoring runtime
  /// fired state. A snapshot records which events had fired, not the
  /// schedule itself; restore is only legal onto an injector built from the
  /// same (seed, config) — this is the check for that precondition.
  [[nodiscard]] bool same_schedule(const FaultInjector& other) const {
    if (events_.size() != other.events_.size()) return false;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      FaultEvent a = events_[i];
      FaultEvent b = other.events_[i];
      a.fired = b.fired = false;  // the defaulted operator== compares fired
      if (!(a == b)) return false;
    }
    return true;
  }

  /// CRC-32 over the canonical encoding of the schedule (fired state
  /// excluded). Snapshot blobs carry it so a kStrict restore can verify
  /// the attached injector's schedule is truly identical — size alone
  /// would let a different same-length campaign slip through and diverge
  /// silently.
  [[nodiscard]] std::uint32_t schedule_digest() const {
    std::vector<std::uint8_t> buf;
    const auto put64 = [&buf](std::uint64_t v) {
      for (unsigned i = 0; i < 8; ++i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    };
    for (const FaultEvent& ev : events_) {
      buf.push_back(static_cast<std::uint8_t>(ev.cls));
      put64(ev.at);
      put64(ev.addr);
      put64(ev.beat);
      put64(ev.bit);
      put64(ev.bits);
      put64(ev.duration);
      buf.push_back(static_cast<std::uint8_t>(ev.fifo));
    }
    return crc32(buf, /*salt=*/0x46534348u);  // "FSCH"
  }

  [[nodiscard]] std::vector<std::uint8_t> fired_flags() const {
    std::vector<std::uint8_t> flags;
    flags.reserve(events_.size());
    for (const FaultEvent& ev : events_) flags.push_back(ev.fired ? 1 : 0);
    return flags;
  }

  /// Rewinds runtime state to a saved point: the clock and the per-event
  /// fired latches (events the snapshot predates become pending again).
  void restore_runtime(cycle_t now, const std::vector<std::uint8_t>& fired) {
    WFASIC_REQUIRE(fired.size() == events_.size(),
                   "FaultInjector::restore_runtime: schedule size mismatch");
    now_ = now;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      events_[i].fired = fired[i] != 0;
    }
  }

  // --- hooks ---------------------------------------------------------------

  /// Time base, driven once per cycle by the component owner.
  void set_now(cycle_t now) { now_ = now; }
  [[nodiscard]] cycle_t now() const { return now_; }

  /// A due main-memory upset: flip `bits` adjacent bits starting at `bit`
  /// of the byte at `addr` (bits = 2 defeats SECDED correction).
  struct MemFlip {
    std::uint64_t addr = 0;
    unsigned bit = 0;
    unsigned bits = 1;
  };

  /// A due wavefront-RAM upset inside aligner `target` (mod the actual
  /// aligner count): `row` selects the cell (mod the live row count), and
  /// `bit` indexes into the cell's 96-bit (M, I, D) word group.
  struct RamFlip {
    std::uint64_t target = 0;
    std::uint64_t row = 0;
    unsigned bit = 0;
    bool double_bit = false;
  };

  /// Memory bit flips whose cycle has arrived. Each is returned once
  /// (marked fired); the caller applies them to its memory model.
  [[nodiscard]] std::vector<MemFlip> due_memory_flips() {
    std::vector<MemFlip> due;
    for (FaultEvent& ev : events_) {
      if (ev.cls != FaultClass::kMemBitFlip || ev.fired || ev.at > now_) {
        continue;
      }
      ev.fired = true;
      due.push_back({ev.addr, ev.bit, ev.bits});
    }
    return due;
  }

  /// Wavefront-RAM flips whose cycle has arrived; returned once each.
  [[nodiscard]] std::vector<RamFlip> due_ram_flips() {
    std::vector<RamFlip> due;
    for (FaultEvent& ev : events_) {
      if (ev.cls != FaultClass::kRamBitFlip || ev.fired || ev.at > now_) {
        continue;
      }
      ev.fired = true;
      due.push_back({ev.beat, ev.addr, ev.bit, ev.bits >= 2});
    }
    return due;
  }

  /// Consulted by the DMA as it issues read beat `beat_index` (a running
  /// count of beats transferred). Consumes all matching beat-keyed events.
  [[nodiscard]] DmaBeatFault dma_read_beat_fault(std::uint64_t beat_index) {
    DmaBeatFault fault;
    for (FaultEvent& ev : events_) {
      if (ev.fired || ev.beat != beat_index) continue;
      switch (ev.cls) {
        case FaultClass::kAxiError:
          fault.bus_error = true;
          break;
        case FaultClass::kDropBeat:
          fault.drop = true;
          break;
        case FaultClass::kDuplicateBeat:
          fault.duplicate = true;
          break;
        case FaultClass::kBeatCorrupt:
          fault.corrupt_byte = (ev.bit / 8) % 16;
          fault.corrupt_mask = static_cast<std::uint8_t>(1u << (ev.bit % 8));
          break;
        default:
          continue;  // cycle-keyed classes are not beat faults
      }
      ev.fired = true;
    }
    return fault;
  }

  /// Consulted by the DMA as it commits write beat `beat_index` (a running
  /// count of beats written). Consumes matching write-path events.
  [[nodiscard]] DmaBeatFault dma_write_beat_fault(std::uint64_t beat_index) {
    DmaBeatFault fault;
    for (FaultEvent& ev : events_) {
      if (ev.fired || ev.beat != beat_index) continue;
      switch (ev.cls) {
        case FaultClass::kWriteBeatDrop:
          fault.drop = true;
          break;
        case FaultClass::kWriteBeatCorrupt:
          fault.corrupt_byte = (ev.bit / 8) % 16;
          fault.corrupt_mask = static_cast<std::uint8_t>(1u << (ev.bit % 8));
          break;
        default:
          continue;  // read-path and cycle-keyed classes
      }
      ev.fired = true;
    }
    return fault;
  }

  /// True while a kFifoStall window for `fifo` covers the current cycle.
  /// Fired is latched on first activation (for campaign statistics); the
  /// stall itself stays in force for the whole window.
  [[nodiscard]] bool fifo_stalled(FaultFifo fifo) {
    bool stalled = false;
    for (FaultEvent& ev : events_) {
      if (ev.cls != FaultClass::kFifoStall || ev.fifo != fifo) continue;
      if (now_ < ev.at) continue;
      if (ev.duration != 0 && now_ >= ev.at + ev.duration) continue;
      ev.fired = true;
      stalled = true;
    }
    return stalled;
  }

 private:
  std::vector<FaultEvent> events_;
  cycle_t now_ = 0;
};

}  // namespace wfasic::sim
