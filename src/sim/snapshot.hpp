// Versioned, CRC-protected snapshot blob format (docs/RELIABILITY.md §7).
//
// A snapshot serializes the complete architectural state of a simulated
// device at a safe point so it can be restored — onto the same device or a
// structurally identical one — and resumed bit-identically. The format is
// deliberately dumb: a fixed header (magic + version), a flat little-endian
// payload written by each component's save_state(), and a salted CRC-32
// trailer over everything before it.
//
// Hardening contract (the satellite requirement): restore must fail loudly,
// never resume silently wrong state. SnapshotReader::open() validates the
// header, length, and CRC *before* the caller reads a single payload byte,
// so corruption, truncation, and version skew are all rejected with a typed
// SnapshotError while the target device is still untouched. Payload reads
// after a successful open are sticky-error: the first out-of-bounds read
// latches kTruncated and every subsequent read returns zero, so decode code
// needs no per-field checks — it checks error() once at the end.
//
// Errors are returned values, never exceptions: the repo's assert layer
// (common/assert.hpp) is abort-based and restore failures are expected
// operational events (a stale blob after a config change, a corrupted
// checkpoint file), not programming bugs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/crc32.hpp"

namespace wfasic::sim {

/// Why a snapshot restore was rejected. Every value means "the target
/// device was not resumed from this blob"; only kBadValue can leave a
/// partially-applied target (see SnapshotReader file comment) — callers
/// must soft-reset or discard the device on that path.
enum class SnapshotError : std::uint8_t {
  kTruncated,       ///< blob shorter than its encoded content
  kBadMagic,        ///< not a snapshot of this container type
  kBadVersion,      ///< produced by an incompatible format revision
  kCrcMismatch,     ///< payload corrupted in flight or at rest
  kBadValue,        ///< a decoded field is semantically impossible
  kConfigMismatch,  ///< source and target devices differ structurally
};

[[nodiscard]] inline const char* snapshot_error_name(SnapshotError err) {
  switch (err) {
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadMagic: return "bad-magic";
    case SnapshotError::kBadVersion: return "bad-version";
    case SnapshotError::kCrcMismatch: return "crc-mismatch";
    case SnapshotError::kBadValue: return "bad-value";
    case SnapshotError::kConfigMismatch: return "config-mismatch";
  }
  return "?";
}

/// Section tags: one u32 sentinel written before each component's state so
/// a reader that drifts out of sync with the writer fails on the next
/// section boundary instead of silently decoding garbage into valid-looking
/// fields.
class SnapshotWriter {
 public:
  SnapshotWriter(std::uint32_t magic, std::uint32_t version) {
    u32(magic);
    u32(version);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (unsigned i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void section(std::uint32_t tag) { u32(tag); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Appends the salted CRC-32 trailer (over header + payload) and yields
  /// the finished blob. The writer is spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish(std::uint32_t crc_salt) {
    const std::uint32_t crc =
        crc32(std::span<const std::uint8_t>(buf_), crc_salt);
    u32(crc);
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> blob) : blob_(blob) {}

  /// Header + integrity gate. Must be called (and succeed) before any
  /// payload read. Validation order matters for the typed errors: length
  /// first (magic/CRC fields must exist), then magic (is this even ours?),
  /// then CRC (trusted bytes from here on), then version (a meaningful
  /// version comparison needs an intact blob).
  [[nodiscard]] std::optional<SnapshotError> open(std::uint32_t magic,
                                                  std::uint32_t version,
                                                  std::uint32_t crc_salt) {
    if (blob_.size() < kHeaderBytes + kTrailerBytes) {
      return fail(SnapshotError::kTruncated);
    }
    const std::span<const std::uint8_t> body =
        blob_.first(blob_.size() - kTrailerBytes);
    std::uint32_t stored = 0;
    std::memcpy(&stored, blob_.data() + body.size(), 4);
    if (peek_u32(0) != magic) return fail(SnapshotError::kBadMagic);
    if (crc32(body, crc_salt) != stored) {
      return fail(SnapshotError::kCrcMismatch);
    }
    if (peek_u32(4) != version) return fail(SnapshotError::kBadVersion);
    pos_ = kHeaderBytes;
    end_ = body.size();
    opened_ = true;
    return std::nullopt;
  }

  [[nodiscard]] std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, 8);
    return v;
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  void bytes(std::span<std::uint8_t> out) { take(out.data(), out.size()); }

  /// Consumes a section tag; a mismatch latches kBadValue (the reader has
  /// drifted — nothing after this point can be trusted to decode).
  [[nodiscard]] bool section(std::uint32_t tag) {
    if (u32() != tag) {
      (void)fail(SnapshotError::kBadValue);
      return false;
    }
    return ok();
  }

  /// Latches a semantic decode failure from component restore code.
  std::optional<SnapshotError> fail(SnapshotError err) {
    if (!error_) error_ = err;
    return error_;
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  [[nodiscard]] std::optional<SnapshotError> error() const { return error_; }
  [[nodiscard]] bool at_end() const { return pos_ == end_; }
  [[nodiscard]] std::size_t remaining() const { return end_ - pos_; }

 private:
  static constexpr std::size_t kHeaderBytes = 8;   ///< magic + version
  static constexpr std::size_t kTrailerBytes = 4;  ///< CRC-32

  [[nodiscard]] std::uint32_t peek_u32(std::size_t at) const {
    std::uint32_t v = 0;
    std::memcpy(&v, blob_.data() + at, 4);
    return v;
  }

  void take(void* out, std::size_t n) {
    if (error_ || !opened_ || end_ - pos_ < n) {
      (void)fail(opened_ ? SnapshotError::kTruncated
                         : SnapshotError::kBadValue);
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, blob_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::uint8_t> blob_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  bool opened_ = false;
  std::optional<SnapshotError> error_;
};

}  // namespace wfasic::sim
