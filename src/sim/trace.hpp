// Cycle-level pipeline tracing (docs/OBSERVABILITY.md §3).
//
// A TraceSink collects typed span ("X") and instant ("i") events emitted by
// simulator components as pairs move through the pipeline: fetch → extract →
// extend/align → collect → DMA-out, plus error and watchdog events. Events
// are purely observational — emitting them never changes simulated state or
// timing — and the sink is compiled in but disabled by default: every emit
// site is gated on `sink && sink->enabled()`, so the disabled path costs one
// pointer test.
//
// Timestamps are simulated cycles. Serialization to Chrome trace-event JSON
// (Perfetto-loadable) lives in common/trace_json.hpp so the sim layer stays
// free of I/O.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wfasic::sim {

using cycle_t = std::uint64_t;

/// One trace event. `ph` follows the Chrome trace-event phase codes we use:
/// 'X' = complete span [ts, ts+dur), 'i' = instant at ts.
struct TraceEvent {
  /// Sentinel for "no pair/object id attached to this event".
  static constexpr std::uint64_t kNoId = ~std::uint64_t{0};

  std::string name;        ///< event name ("extract", "align", "watchdog"...)
  const char* cat = "";    ///< category ("pipeline", "error", "dma")
  char ph = 'X';           ///< 'X' complete span, 'i' instant
  std::uint32_t track = 0; ///< rendered as the Chrome "tid" (one per unit)
  cycle_t ts = 0;          ///< start cycle
  cycle_t dur = 0;         ///< span length in cycles ('X' only)
  std::uint64_t id = kNoId;  ///< optional pair/record id (emitted as args.id)
};

/// Event collector shared by every component of one accelerator instance.
/// Tracks (Chrome "threads") are registered by name; components cache their
/// track id once at wiring time.
class TraceSink {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Registers (or finds) a named track and returns its id. Idempotent per
  /// name so re-wiring components is harmless.
  std::uint32_t register_track(const std::string& name) {
    for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
      if (tracks_[i] == name) return i;
    }
    tracks_.push_back(name);
    return static_cast<std::uint32_t>(tracks_.size() - 1);
  }

  /// Emits a complete span covering [begin, end] (inclusive of the ending
  /// cycle: dur = end - begin + 1, matching the "cycles N..M" convention of
  /// the per-record cycle accounting).
  void span(std::uint32_t track, std::string name, const char* cat,
            cycle_t begin, cycle_t end, std::uint64_t id = TraceEvent::kNoId) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'X';
    ev.track = track;
    ev.ts = begin;
    ev.dur = end >= begin ? end - begin + 1 : 0;
    ev.id = id;
    events_.push_back(std::move(ev));
  }

  /// Emits an instant event at `ts`.
  void instant(std::uint32_t track, std::string name, const char* cat,
               cycle_t ts, std::uint64_t id = TraceEvent::kNoId) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'i';
    ev.track = track;
    ev.ts = ts;
    ev.id = id;
    events_.push_back(std::move(ev));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const {
    return tracks_;
  }

  /// Drops collected events (track registrations are kept — components
  /// cache their ids).
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
};

}  // namespace wfasic::sim
