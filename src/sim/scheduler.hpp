// Simulation kernel: per-cycle two-phase stepping plus an event-driven
// fast path.
//
// Components register with a Scheduler and are ticked once per cycle in two
// phases: tick() (combinational work / issue requests) then commit()
// (sequential state update), which lets two components exchange data in the
// same cycle without order-dependence bugs.
//
// Quiescence protocol: a component may report a span of upcoming cycles
// whose ticks are no-ops or pure linear counter updates (countdowns, stall
// counters) via quiet_for(), and apply them in bulk via skip_quiet().
// Two fast paths build on it, both bit-identical to exact stepping by
// construction:
//
//   - Idle-skip (legacy): when *every* component is simultaneously quiet
//     (quiescent_cycles(), an O(N) poll) the span is compressed into one
//     skip() call.
//   - Event-driven kernel: each component self-schedules its next
//     activation (next_activation() = now + quiet_for()), the Scheduler
//     keeps a min-heap of pending activations plus an explicit wakeup
//     graph (add_wakeup()), and per-cycle work becomes O(active
//     components): a busy Aligner no longer forces ticks of an idle DMA or
//     Collector, and fully-quiet spans bulk-advance straight to the next
//     event without polling anyone. Sleeping components are caught up
//     lazily (on_wake()/skip_quiet()) *before* a waker mutates shared
//     state, so their bulk updates read exactly the state the skipped
//     per-cycle ticks would have read.
//
// Wakeup-edge delays are derived from registration order: a mutation by
// component F during its tick at cycle t is visible to a *later*-registered
// component in the same cycle (delay 0 — per-cycle mode would tick it after
// F), but only at t+1 to an *earlier*-registered one (delay 1 — its cycle-t
// tick already conceptually happened before F's).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/trace.hpp"

namespace wfasic::sim {

/// Base class for everything that owns per-cycle behaviour.
class Component {
 public:
  /// quiet_for() return value meaning "idle until some other component
  /// wakes me" (no self-scheduled event of my own).
  static constexpr cycle_t kQuietForever =
      std::numeric_limits<cycle_t>::max();

  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Phase 1: observe current state, issue requests.
  virtual void tick(cycle_t now) = 0;
  /// Phase 2: latch new state. Default: nothing.
  virtual void commit(cycle_t now) { (void)now; }

  /// Quiescence report: the number of upcoming cycles for which this
  /// component's tick is a no-op or a pure linear counter update — no
  /// FIFO/queue push or pop, no state-machine transition, no interaction
  /// with another component. 0 means "I must tick this cycle" (the safe
  /// default); kQuietForever means "idle until another component acts".
  /// The report must stay valid until one of the component's declared
  /// wakers (Scheduler::add_wakeup) performs a non-quiet tick — that is
  /// what lets the event kernel sleep on it.
  [[nodiscard]] virtual cycle_t quiet_for(cycle_t now) const {
    (void)now;
    return 0;
  }
  /// Applies `n` ticks' worth of quiet updates in bulk. Called only with
  /// n <= the component's own quiet_for() report, and only when no waker
  /// acted inside the span (the state the skipped ticks would have read is
  /// still in place).
  virtual void skip_quiet(cycle_t n) { (void)n; }

  /// Self-scheduling contract, event-kernel view of quiet_for(): the
  /// absolute cycle of this component's next required tick (kQuietForever
  /// when it has none and waits to be woken).
  [[nodiscard]] cycle_t next_activation(cycle_t now) const {
    const cycle_t q = quiet_for(now);
    return q >= kQuietForever - now ? kQuietForever : now + q;
  }
  /// Catch-up entry point the event kernel uses when a sleeping component
  /// must account `n` elapsed quiet cycles (a waker is about to act, or
  /// the kernel is flushing). Defaults to skip_quiet(); a component could
  /// override it to distinguish lazy catch-up from eager skipping.
  virtual void on_wake(cycle_t n) { skip_quiet(n); }

  /// Compiled macro-step contract (the steady-state fast path above the
  /// event kernel): advance up to `budget` cycles of this component's own
  /// behaviour in one fused call, and return the cycles actually consumed
  /// (0 = not applicable here, fall back to per-cycle stepping).
  ///
  /// The Scheduler only calls this across spans where no other registered
  /// component can act (Scheduler::try_macro_step), so the implementation
  /// may run its hot loop without re-checking FIFO handshakes or waker
  /// state. In exchange it must guarantee, for the consumed span:
  ///   - no externally-visible effect: nothing another component or the
  ///     host could observe (queue/FIFO pushes, idle() flips, interrupt
  ///     conditions) happens inside the span — the fused loop stops one
  ///     cycle *before* its first externally-visible tick, which then runs
  ///     as a normal tick() and issues wakeups;
  ///   - observational identity: at span end, every externally-queriable
  ///     value (counters, quiet_for() schedule, results) reads exactly as
  ///     if the span had been stepped per cycle;
  ///   - budget compliance: the return value never exceeds `budget`
  ///     (enforced by an assert in the Scheduler).
  /// The default declines, so components are per-cycle unless they opt in.
  [[nodiscard]] virtual cycle_t macro_step(cycle_t now, cycle_t budget) {
    (void)now;
    (void)budget;
    return 0;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Wires a trace sink into this component. Each component gets a track
  /// named after itself; emission is observational only, so wiring (or not)
  /// never changes simulated behaviour. Passing nullptr unwires.
  void set_trace(TraceSink* sink) {
    trace_ = sink;
    trace_track_ = sink != nullptr ? sink->register_track(name_) : 0;
  }

 protected:
  /// Non-null and enabled iff this component should emit trace events.
  /// The double test compiles to one pointer load + flag test — the no-op
  /// fast path when tracing is off.
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }
  [[nodiscard]] TraceSink* trace() const { return trace_; }
  [[nodiscard]] std::uint32_t trace_track() const { return trace_track_; }

 private:
  std::string name_;
  TraceSink* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

/// How a bounded Scheduler::run_until ended.
enum class RunUntilStatus : std::uint8_t {
  kDone,     ///< the predicate became true
  kTimeout,  ///< `max_cycles` elapsed first (likely deadlock)
};

struct RunUntilResult {
  RunUntilStatus status = RunUntilStatus::kDone;
  cycle_t now = 0;  ///< scheduler time at exit

  [[nodiscard]] bool timed_out() const {
    return status == RunUntilStatus::kTimeout;
  }
};

/// Advances a set of components cycle by cycle. Does not own them.
class Scheduler {
 public:
  /// `due` sentinel: no self-scheduled activation.
  static constexpr cycle_t kNever = Component::kQuietForever;

  /// Registers a component. `needs_commit = false` keeps it off the
  /// commit-phase list (most components never override commit(); skipping
  /// the empty virtual call halves the per-cycle dispatch cost).
  /// Registering the same component twice would double-tick it — silent
  /// state corruption — so it is rejected.
  void add(Component* component, bool needs_commit = true) {
    WFASIC_REQUIRE(component != nullptr, "Scheduler::add: null component");
    WFASIC_REQUIRE(std::find(components_.begin(), components_.end(),
                             component) == components_.end(),
                   "Scheduler::add: component already registered (duplicate "
                   "registration would double-tick it)");
    components_.push_back(component);
    if (needs_commit) commit_list_.push_back(component);
    needs_commit_.push_back(needs_commit);
    edges_.emplace_back();
    due_.push_back(now_);
    synced_.push_back(now_);
    last_ticked_.push_back(kNever);
    must_tick_.push_back(0);
  }

  /// Declares a wakeup edge: whenever `from` performs a non-quiet tick,
  /// `to` can no longer trust a pending quiet_for() report and must be
  /// caught up and re-evaluated. The visibility delay (same cycle vs next
  /// cycle) is derived from registration order — see the file comment.
  /// Edges only matter to the event kernel; per-cycle stepping ignores
  /// them.
  void add_wakeup(Component* from, Component* to) {
    const std::size_t f = index_of(from);
    const std::size_t t = index_of(to);
    WFASIC_REQUIRE(f != t, "Scheduler::add_wakeup: self edge is meaningless");
    edges_[f].push_back(
        WakeEdge{static_cast<std::uint32_t>(t), t > f ? 0u : 1u});
  }

  [[nodiscard]] cycle_t now() const { return now_; }

  /// Kernel dispatch accounting (observational, never read by simulation
  /// logic): how many tick() dispatches and fused macro-steps the kernel
  /// issued. `ticks / simulated cycles` is the dispatch density the
  /// bench/sim_kernel steady-graph metric tracks across strategies.
  struct DispatchStats {
    std::uint64_t ticks = 0;             ///< component tick() dispatches
    std::uint64_t macro_dispatches = 0;  ///< fused macro_step() calls
    std::uint64_t macro_cycles = 0;      ///< cycles consumed by macro-steps
  };
  [[nodiscard]] const DispatchStats& dispatch_stats() const { return stats_; }

  /// Runs exactly one cycle.
  void step() { step_n(1); }

  /// Runs exactly `n` cycles with the dispatch lists hoisted out of the
  /// per-cycle loop (the batched stepper behind driver/engine wait loops).
  void step_n(cycle_t n) {
    if (events_armed_) flush_events();
    Component* const* tick_list = components_.data();
    const std::size_t tick_count = components_.size();
    Component* const* commit_list = commit_list_.data();
    const std::size_t commit_count = commit_list_.size();
    stats_.ticks += static_cast<std::uint64_t>(tick_count) * n;
    for (cycle_t c = 0; c < n; ++c) {
      for (std::size_t i = 0; i < tick_count; ++i) tick_list[i]->tick(now_);
      for (std::size_t i = 0; i < commit_count; ++i) {
        commit_list[i]->commit(now_);
      }
      ++now_;
    }
  }

  /// The number of cycles every component reports quiescent from now
  /// (minimum over components, early-exit on 0). 0 means some component
  /// must tick this cycle; kQuietForever means nothing is self-scheduled.
  [[nodiscard]] cycle_t quiescent_cycles() const {
    cycle_t quiet = Component::kQuietForever;
    for (const Component* c : components_) {
      const cycle_t q = c->quiet_for(now_);
      if (q == 0) return 0;
      quiet = std::min(quiet, q);
    }
    return quiet;
  }

  /// Fast-forwards `n` cycles of system-wide quiescence: bulk-applies the
  /// quiet counter updates and advances now_. Only valid for
  /// n <= quiescent_cycles(). A span that would overflow the cycle counter
  /// is a caller bug (kQuietForever is "no event", not a distance), so it
  /// is rejected here rather than wrapping now_ silently.
  void skip(cycle_t n) {
    if (n == 0) return;
    WFASIC_REQUIRE(n < Component::kQuietForever - now_,
                   "Scheduler::skip: span would overflow the cycle counter "
                   "(a kQuietForever-sized span is not skippable)");
    if (events_armed_) flush_events();
    for (Component* c : components_) c->skip_quiet(n);
    now_ += n;
  }

  // --- Event-driven kernel ---------------------------------------------------

  /// Starts an event-driven run: every component is marked due now, so the
  /// first run_event_cycle() re-evaluates the whole system and components
  /// fall asleep according to their quiet_for() reports. No-op if already
  /// armed. Cheap (O(N)) — callers arm at fast-path entry and flush at
  /// exit so external observers only ever see fully-synced state.
  void arm_events() {
    if (events_armed_) return;
    heap_.clear();
    for (std::size_t i = 0; i < components_.size(); ++i) {
      due_[i] = now_;
      synced_[i] = now_;
      last_ticked_[i] = kNever;
      must_tick_[i] = 0;
    }
    immediate_due_ = !components_.empty();
    events_armed_ = true;
  }

  /// Ends an event-driven run: applies every pending lazy catch-up so all
  /// component state (counters included) reads exactly as if the run had
  /// been stepped per-cycle. Safe to call when not armed.
  void flush_events() {
    if (!events_armed_) return;
    for (std::size_t i = 0; i < components_.size(); ++i) catch_up(i, now_);
    heap_.clear();
    immediate_due_ = false;
    events_armed_ = false;
  }

  /// Re-synchronizes an armed event run after state is mutated from
  /// outside any tick (pipeline flush, abort): pending quiet spans are
  /// accounted against the pre-mutation state first, then every component
  /// is marked due so stale sleep schedules cannot survive the mutation.
  /// No-op when not armed (external mutation between runs needs nothing).
  void resync_events() {
    if (!events_armed_) return;
    heap_.clear();
    for (std::size_t i = 0; i < components_.size(); ++i) {
      catch_up(i, now_);
      due_[i] = now_;
      must_tick_[i] = 0;
    }
    immediate_due_ = !components_.empty();
  }

  [[nodiscard]] bool events_armed() const { return events_armed_; }

  /// Snapshot restore (sim/snapshot.hpp): rewinds the clock and dispatch
  /// accounting to a saved safe point. Only legal between event runs — at a
  /// safe point all event bookkeeping is derivable from now_ (arm_events
  /// rebuilds due_/synced_/heap_ from scratch), so the clock and stats are
  /// the Scheduler's entire architectural state. The per-component arrays
  /// are reset to the same just-armed baseline for hygiene.
  void restore_clock(cycle_t now, const DispatchStats& stats) {
    WFASIC_REQUIRE(!events_armed_,
                   "Scheduler::restore_clock: events must be flushed first");
    now_ = now;
    stats_ = stats;
    heap_.clear();
    immediate_due_ = false;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      due_[i] = now_;
      synced_[i] = now_;
      last_ticked_[i] = kNever;
      must_tick_[i] = 0;
    }
  }

  /// The earliest pending activation (kNever when every component sleeps
  /// unwoken). Components due this very cycle are tracked with a flag
  /// instead of heap entries (see set_due), so a steady-state pipeline —
  /// everyone due every cycle — costs zero heap traffic. Stale heap
  /// entries — superseded by an earlier wake or a reschedule — are
  /// discarded lazily here.
  [[nodiscard]] cycle_t next_event_cycle() {
    WFASIC_ASSERT(events_armed_, "next_event_cycle: events not armed");
    if (immediate_due_) return now_;
    while (!heap_.empty()) {
      const Event top = heap_.front();
      if (due_[top.idx] == top.due) return top.due;
      std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
      heap_.pop_back();
    }
    return kNever;
  }

  /// Bulk-advances simulated time to `target` without ticking anyone.
  /// Only valid while armed and when next_event_cycle() >= target: every
  /// component is inside a declared quiet span, and the skipped cycles are
  /// accounted lazily at its next wake (or at flush_events()).
  void advance_to(cycle_t target) {
    WFASIC_ASSERT(events_armed_ && target >= now_ && target < kNever,
                  "Scheduler::advance_to: bad target");
    now_ = target;
  }

  /// Attempts one compiled macro-step. Grant rule (the wakeup-graph
  /// steady-state predicate): exactly one component is due at now_ and
  /// every other component's next activation is strictly later — then,
  /// because wakes only originate from other components' non-quiet ticks,
  /// no registered waker can act before the earliest other activation, and
  /// the due component may advance up to that horizon (capped by
  /// `max_span`) in one fused macro_step() call. Returns the cycles
  /// consumed; 0 means no macro-step applied (two components due, the
  /// component declined, or the budget is too small to beat a plain
  /// tick) and the caller falls back to run_event_cycle().
  ///
  /// Other components' sleep schedules and synced_ marks stay untouched:
  /// the span is externally invisible by the macro_step() contract, so the
  /// state their lazy catch-ups will read is exactly the state the skipped
  /// per-cycle ticks would have read (same argument as advance_to).
  cycle_t try_macro_step(cycle_t max_span) {
    WFASIC_ASSERT(events_armed_, "try_macro_step: events not armed");
    if (max_span <= 1) return 0;
    const std::size_t count = components_.size();
    std::size_t due_idx = count;
    cycle_t horizon = kNever;
    for (std::size_t i = 0; i < count; ++i) {
      if (due_[i] <= now_) {
        if (due_idx != count) return 0;  // two components due this cycle
        due_idx = i;
      } else if (due_[i] < horizon) {
        horizon = due_[i];
      }
    }
    if (due_idx == count) return 0;  // nobody due: bulk-advance instead
    const cycle_t budget =
        horizon == kNever ? max_span
                          : std::min<cycle_t>(max_span, horizon - now_);
    if (budget <= 1) return 0;  // a plain tick covers this cycle
    catch_up(due_idx, now_);
    const cycle_t used = components_[due_idx]->macro_step(now_, budget);
    if (used == 0) return 0;
    WFASIC_ASSERT(used <= budget,
                  "Scheduler::try_macro_step: macro_step overran its budget");
    ++stats_.macro_dispatches;
    stats_.macro_cycles += used;
    now_ += used;
    synced_[due_idx] = now_;
    last_ticked_[due_idx] = kNever;
    // Reschedule the stepped component from its post-span report, then
    // recompute the immediate-due flag: another component's future
    // activation may sit exactly at the new now_.
    const cycle_t q = components_[due_idx]->quiet_for(now_);
    must_tick_[due_idx] = q == 0;
    set_due(due_idx, q >= kNever - now_ ? kNever : now_ + q);
    immediate_due_ = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (due_[i] <= now_) {
        immediate_due_ = true;
        break;
      }
    }
    return used;
  }

  /// Runs the single cycle at now_ under the event kernel: evaluates every
  /// due component in registration order, catches sleepers up at wakeup
  /// edges *before* the waker's tick mutates shared state, preserves the
  /// two-phase tick/commit split across the cycle's active components, and
  /// reschedules each ticked component from its post-cycle quiet_for().
  /// Bit-identical to step() by the quiescence contract: the components
  /// it does not tick are exactly those whose per-cycle tick would have
  /// been quiet, and their updates apply in bulk later.
  void run_event_cycle() {
    WFASIC_ASSERT(events_armed_, "run_event_cycle: events not armed");
    const cycle_t t = now_;
    // Every component due at t is found by the scan below; the flag is
    // re-established by same-cycle wakes and by q == 0 reschedules.
    immediate_due_ = false;
    ticked_.clear();
    const std::size_t count = components_.size();
    for (std::size_t i = 0; i < count; ++i) {
      if (due_[i] > t) continue;
      catch_up(i, t);
      Component* const c = components_[i];
      // A component rescheduled with quiet_for() == 0 promised a real
      // tick — exact stepping would tick it unconditionally, so skip the
      // re-check (the busy-pipeline fast path). Only conservatively-woken
      // components re-evaluate and may go back to sleep.
      if (!must_tick_[i]) {
        const cycle_t q = c->quiet_for(t);
        if (q > 0) {
          set_due(i, q >= kNever - t ? kNever : t + q);
          continue;
        }
      }
      must_tick_[i] = 0;
      // Real tick at t. Wake successors first: their lazy catch-up must
      // read the pre-mutation state their skipped ticks would have seen.
      for (const WakeEdge& e : edges_[i]) wake(e.to, t, e.delay);
      c->tick(t);
      synced_[i] = t + 1;
      last_ticked_[i] = t;
      ticked_.push_back(static_cast<std::uint32_t>(i));
    }
    stats_.ticks += ticked_.size();
    // Commit phase for the cycle's active components only: a component
    // whose tick was skipped as quiet has, by contract, a no-op commit.
    for (const std::uint32_t idx : ticked_) {
      if (needs_commit_[idx]) components_[idx]->commit(t);
    }
    ++now_;
    // Reschedule from post-cycle state — the authoritative report, same
    // state the legacy between-cycles quiescence poll would read.
    for (const std::uint32_t idx : ticked_) {
      const cycle_t q = components_[idx]->quiet_for(now_);
      must_tick_[idx] = q == 0;
      set_due(idx, q >= kNever - now_ ? kNever : now_ + q);
    }
  }

  /// Runs until `done()` returns true (checked between cycles) or
  /// `max_cycles` elapse. A timeout is reported as a typed status, never
  /// an abort — library code must not kill the process on a deadlock
  /// guard; callers (engine, driver, tests) decide how loud to be.
  ///
  /// With `skip_quiescent` the predicate is instead checked on the coarser
  /// grid of non-quiescent cycles: spans where every component is quiet
  /// are fast-forwarded in one skip() and the boundary cycle is replayed
  /// exactly. Only valid for predicates that can flip solely on non-quiet
  /// ticks (e.g. FIFO/queue occupancy, state-machine phase) — not for
  /// predicates on now() or linear counters.
  RunUntilResult run_until(const std::function<bool()>& done,
                           cycle_t max_cycles, bool skip_quiescent = false) {
    while (!done()) {
      if (now_ >= max_cycles) {
        return {RunUntilStatus::kTimeout, now_};
      }
      if (skip_quiescent) {
        const cycle_t quiet = quiescent_cycles();
        if (quiet > 0) {
          skip(std::min(quiet, max_cycles - now_));
          continue;
        }
      }
      step_n(1);
    }
    return {RunUntilStatus::kDone, now_};
  }

  /// run_until on the event kernel: same predicate-checking grid semantics
  /// and typed timeout as run_until(skip_quiescent=true) — the predicate
  /// and the deadline are evaluated at every active cycle and at every
  /// bulk-advance boundary, against fully caught-up component state — but
  /// quiet spans are found from the activation heap instead of the O(N)
  /// quiescence poll, and only due components are evaluated at active
  /// cycles. Event bookkeeping is flushed on exit, so callers observe
  /// per-cycle-identical state either way.
  ///
  /// `macro_steps` additionally offers every eligible single-owner span to
  /// the due component as one fused macro_step() call (try_macro_step).
  /// The span is externally invisible by the macro contract, so the
  /// predicate grid is unchanged: `done` is evaluated at span end against
  /// the same observable state per-cycle stepping would present.
  RunUntilResult run_until_events(const std::function<bool()>& done,
                                  cycle_t max_cycles,
                                  bool macro_steps = false) {
    arm_events();
    for (;;) {
      for (std::size_t i = 0; i < components_.size(); ++i) catch_up(i, now_);
      if (done()) break;
      if (now_ >= max_cycles) {
        flush_events();
        return {RunUntilStatus::kTimeout, now_};
      }
      const cycle_t next = next_event_cycle();
      if (next > now_) {
        advance_to(std::min(next, max_cycles));
        continue;
      }
      if (macro_steps && try_macro_step(max_cycles - now_) > 0) continue;
      run_event_cycle();
    }
    flush_events();
    return {RunUntilStatus::kDone, now_};
  }

 private:
  struct WakeEdge {
    std::uint32_t to;     ///< successor component index
    std::uint32_t delay;  ///< 0 = same cycle, 1 = next cycle (see above)
  };
  struct Event {
    cycle_t due;
    std::uint32_t idx;
  };
  /// Min-heap order on due cycles (std::push_heap builds a max-heap, so
  /// "later" is the comparator).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.due > b.due;
    }
  };

  [[nodiscard]] std::size_t index_of(const Component* c) const {
    const auto it = std::find(components_.begin(), components_.end(), c);
    WFASIC_REQUIRE(it != components_.end(),
                   "Scheduler: component not registered");
    return static_cast<std::size_t>(it - components_.begin());
  }

  /// Accounts the quiet cycles [synced_[i], t) to component i in bulk.
  void catch_up(std::size_t i, cycle_t t) {
    if (synced_[i] < t) {
      components_[i]->on_wake(t - synced_[i]);
      synced_[i] = t;
    }
  }

  /// Records component i's next evaluation cycle. Three representations:
  /// kNever needs none (a wake will reinstate it), a due cycle <= now_
  /// (always-busy reschedules, same-cycle wakes) is tracked by the
  /// immediate flag — no heap traffic on the steady-state path — and only
  /// genuinely future activations enter the heap.
  void set_due(std::size_t i, cycle_t due) {
    due_[i] = due;
    if (due <= now_) {
      immediate_due_ = true;
    } else if (due != kNever) {
      heap_.push_back(Event{due, static_cast<std::uint32_t>(i)});
      std::push_heap(heap_.begin(), heap_.end(), EventLater{});
    }
  }

  /// A non-quiet tick of a predecessor at cycle t: component `idx` must be
  /// caught up through t + delay (reading pre-mutation state — this runs
  /// before the waker's tick) and re-evaluated then. A component that
  /// already ticked this cycle is rescheduled from post-cycle state
  /// anyway, so the wake is a no-op for it.
  void wake(std::size_t idx, cycle_t t, cycle_t delay) {
    if (last_ticked_[idx] == t) return;
    const cycle_t target = t + delay;
    if (synced_[idx] < target) {
      components_[idx]->on_wake(target - synced_[idx]);
      synced_[idx] = target;
    }
    if (due_[idx] > target) set_due(idx, target);
  }

  std::vector<Component*> components_;
  std::vector<Component*> commit_list_;
  std::vector<bool> needs_commit_;
  std::vector<std::vector<WakeEdge>> edges_;
  // Event-kernel bookkeeping, indexed like components_. Only meaningful
  // while events_armed_.
  std::vector<cycle_t> due_;       ///< next evaluation cycle (kNever: none)
  std::vector<cycle_t> synced_;    ///< first cycle not yet accounted
  std::vector<cycle_t> last_ticked_;
  /// due_[i] came from a quiet_for() == 0 reschedule (a promised tick, no
  /// pre-tick re-check needed), not a conservative wake.
  std::vector<std::uint8_t> must_tick_;
  std::vector<Event> heap_;        ///< lazy min-heap over future due_
  std::vector<std::uint32_t> ticked_;  ///< scratch: this cycle's active set
  /// Some component is due at now_ (tracked outside the heap: see set_due).
  bool immediate_due_ = false;
  bool events_armed_ = false;
  cycle_t now_ = 0;
  DispatchStats stats_;
};

}  // namespace wfasic::sim
