// Cycle-driven simulation kernel.
//
// Components register with a Scheduler and are ticked once per cycle in two
// phases: tick() (combinational work / issue requests) then commit()
// (sequential state update), which lets two components exchange data in the
// same cycle without order-dependence bugs.
//
// Idle-skip fast path: a component may additionally report quiescence —
// a span of upcoming cycles whose ticks are no-ops or pure linear counter
// updates (countdowns, stall counters). When every component is quiescent
// the Scheduler can fast-forward `now_` in one skip() call instead of
// ticking through the span, applying the counter updates in bulk. Skipping
// is bit-identical to stepping by construction: quiet_for()/skip_quiet()
// contracts require that the skipped ticks would not have changed any
// observable state differently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sim/trace.hpp"

namespace wfasic::sim {

/// Base class for everything that owns per-cycle behaviour.
class Component {
 public:
  /// quiet_for() return value meaning "idle until some other component
  /// wakes me" (no self-scheduled event of my own).
  static constexpr cycle_t kQuietForever =
      std::numeric_limits<cycle_t>::max();

  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Phase 1: observe current state, issue requests.
  virtual void tick(cycle_t now) = 0;
  /// Phase 2: latch new state. Default: nothing.
  virtual void commit(cycle_t now) { (void)now; }

  /// Quiescence report: the number of upcoming cycles for which this
  /// component's tick is a no-op or a pure linear counter update — no
  /// FIFO/queue push or pop, no state-machine transition, no interaction
  /// with another component. 0 means "I must tick this cycle" (the safe
  /// default); kQuietForever means "idle until another component acts".
  /// The report is only valid for the current cycle: any non-quiet tick
  /// anywhere in the system invalidates it.
  [[nodiscard]] virtual cycle_t quiet_for(cycle_t now) const {
    (void)now;
    return 0;
  }
  /// Applies `n` ticks' worth of quiet updates in bulk. Called only with
  /// n <= the component's own quiet_for() report, and only when every
  /// other component was simultaneously quiescent for at least n cycles.
  virtual void skip_quiet(cycle_t n) { (void)n; }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Wires a trace sink into this component. Each component gets a track
  /// named after itself; emission is observational only, so wiring (or not)
  /// never changes simulated behaviour. Passing nullptr unwires.
  void set_trace(TraceSink* sink) {
    trace_ = sink;
    trace_track_ = sink != nullptr ? sink->register_track(name_) : 0;
  }

 protected:
  /// Non-null and enabled iff this component should emit trace events.
  /// The double test compiles to one pointer load + flag test — the no-op
  /// fast path when tracing is off.
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }
  [[nodiscard]] TraceSink* trace() const { return trace_; }
  [[nodiscard]] std::uint32_t trace_track() const { return trace_track_; }

 private:
  std::string name_;
  TraceSink* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

/// How a bounded Scheduler::run_until ended.
enum class RunUntilStatus : std::uint8_t {
  kDone,     ///< the predicate became true
  kTimeout,  ///< `max_cycles` elapsed first (likely deadlock)
};

struct RunUntilResult {
  RunUntilStatus status = RunUntilStatus::kDone;
  cycle_t now = 0;  ///< scheduler time at exit

  [[nodiscard]] bool timed_out() const {
    return status == RunUntilStatus::kTimeout;
  }
};

/// Advances a set of components cycle by cycle. Does not own them.
class Scheduler {
 public:
  /// Registers a component. `needs_commit = false` keeps it off the
  /// commit-phase list (most components never override commit(); skipping
  /// the empty virtual call halves the per-cycle dispatch cost).
  void add(Component* component, bool needs_commit = true) {
    WFASIC_REQUIRE(component != nullptr, "Scheduler::add: null component");
    components_.push_back(component);
    if (needs_commit) commit_list_.push_back(component);
  }

  [[nodiscard]] cycle_t now() const { return now_; }

  /// Runs exactly one cycle.
  void step() { step_n(1); }

  /// Runs exactly `n` cycles with the dispatch lists hoisted out of the
  /// per-cycle loop (the batched stepper behind driver/engine wait loops).
  void step_n(cycle_t n) {
    Component* const* tick_list = components_.data();
    const std::size_t tick_count = components_.size();
    Component* const* commit_list = commit_list_.data();
    const std::size_t commit_count = commit_list_.size();
    for (cycle_t c = 0; c < n; ++c) {
      for (std::size_t i = 0; i < tick_count; ++i) tick_list[i]->tick(now_);
      for (std::size_t i = 0; i < commit_count; ++i) {
        commit_list[i]->commit(now_);
      }
      ++now_;
    }
  }

  /// The number of cycles every component reports quiescent from now
  /// (minimum over components, early-exit on 0). 0 means some component
  /// must tick this cycle; kQuietForever means nothing is self-scheduled.
  [[nodiscard]] cycle_t quiescent_cycles() const {
    cycle_t quiet = Component::kQuietForever;
    for (const Component* c : components_) {
      const cycle_t q = c->quiet_for(now_);
      if (q == 0) return 0;
      quiet = std::min(quiet, q);
    }
    return quiet;
  }

  /// Fast-forwards `n` cycles of system-wide quiescence: bulk-applies the
  /// quiet counter updates and advances now_. Only valid for
  /// n <= quiescent_cycles().
  void skip(cycle_t n) {
    if (n == 0) return;
    for (Component* c : components_) c->skip_quiet(n);
    now_ += n;
  }

  /// Runs until `done()` returns true (checked between cycles) or
  /// `max_cycles` elapse. A timeout is reported as a typed status, never
  /// an abort — library code must not kill the process on a deadlock
  /// guard; callers (engine, driver, tests) decide how loud to be.
  ///
  /// With `skip_quiescent` the predicate is instead checked on the coarser
  /// grid of non-quiescent cycles: spans where every component is quiet
  /// are fast-forwarded in one skip() and the boundary cycle is replayed
  /// exactly. Only valid for predicates that can flip solely on non-quiet
  /// ticks (e.g. FIFO/queue occupancy, state-machine phase) — not for
  /// predicates on now() or linear counters.
  RunUntilResult run_until(const std::function<bool()>& done,
                           cycle_t max_cycles, bool skip_quiescent = false) {
    while (!done()) {
      if (now_ >= max_cycles) {
        return {RunUntilStatus::kTimeout, now_};
      }
      if (skip_quiescent) {
        const cycle_t quiet = quiescent_cycles();
        if (quiet > 0) {
          skip(std::min(quiet, max_cycles - now_));
          continue;
        }
      }
      step_n(1);
    }
    return {RunUntilStatus::kDone, now_};
  }

 private:
  std::vector<Component*> components_;
  std::vector<Component*> commit_list_;
  cycle_t now_ = 0;
};

}  // namespace wfasic::sim
