// Cycle-driven simulation kernel.
//
// Components register with a Scheduler and are ticked once per cycle in two
// phases: tick() (combinational work / issue requests) then commit()
// (sequential state update), which lets two components exchange data in the
// same cycle without order-dependence bugs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::sim {

using cycle_t = std::uint64_t;

/// Base class for everything that owns per-cycle behaviour.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Phase 1: observe current state, issue requests.
  virtual void tick(cycle_t now) = 0;
  /// Phase 2: latch new state. Default: nothing.
  virtual void commit(cycle_t now) { (void)now; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// How a bounded Scheduler::run_until ended.
enum class RunUntilStatus : std::uint8_t {
  kDone,     ///< the predicate became true
  kTimeout,  ///< `max_cycles` elapsed first (likely deadlock)
};

struct RunUntilResult {
  RunUntilStatus status = RunUntilStatus::kDone;
  cycle_t now = 0;  ///< scheduler time at exit

  [[nodiscard]] bool timed_out() const {
    return status == RunUntilStatus::kTimeout;
  }
};

/// Advances a set of components cycle by cycle. Does not own them.
class Scheduler {
 public:
  void add(Component* component) {
    WFASIC_REQUIRE(component != nullptr, "Scheduler::add: null component");
    components_.push_back(component);
  }

  [[nodiscard]] cycle_t now() const { return now_; }

  /// Runs exactly one cycle.
  void step() {
    for (Component* c : components_) c->tick(now_);
    for (Component* c : components_) c->commit(now_);
    ++now_;
  }

  /// Runs until `done()` returns true (checked between cycles) or
  /// `max_cycles` elapse. A timeout is reported as a typed status, never
  /// an abort — library code must not kill the process on a deadlock
  /// guard; callers (engine, driver, tests) decide how loud to be.
  RunUntilResult run_until(const std::function<bool()>& done,
                           cycle_t max_cycles) {
    while (!done()) {
      if (now_ >= max_cycles) {
        return {RunUntilStatus::kTimeout, now_};
      }
      step();
    }
    return {RunUntilStatus::kDone, now_};
  }

 private:
  std::vector<Component*> components_;
  cycle_t now_ = 0;
};

}  // namespace wfasic::sim
