// Cycle-driven simulation kernel.
//
// Components register with a Scheduler and are ticked once per cycle in two
// phases: tick() (combinational work / issue requests) then commit()
// (sequential state update), which lets two components exchange data in the
// same cycle without order-dependence bugs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace wfasic::sim {

using cycle_t = std::uint64_t;

/// Base class for everything that owns per-cycle behaviour.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Phase 1: observe current state, issue requests.
  virtual void tick(cycle_t now) = 0;
  /// Phase 2: latch new state. Default: nothing.
  virtual void commit(cycle_t now) { (void)now; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Advances a set of components cycle by cycle. Does not own them.
class Scheduler {
 public:
  void add(Component* component) {
    WFASIC_REQUIRE(component != nullptr, "Scheduler::add: null component");
    components_.push_back(component);
  }

  [[nodiscard]] cycle_t now() const { return now_; }

  /// Runs exactly one cycle.
  void step() {
    for (Component* c : components_) c->tick(now_);
    for (Component* c : components_) c->commit(now_);
    ++now_;
  }

  /// Runs until `done()` returns true (checked between cycles) or
  /// `max_cycles` elapse. Returns the cycle count at exit and aborts the
  /// program on timeout when `abort_on_timeout` (deadlock guard).
  cycle_t run_until(const std::function<bool()>& done, cycle_t max_cycles,
                    bool abort_on_timeout = true) {
    while (!done()) {
      if (now_ >= max_cycles) {
        WFASIC_REQUIRE(!abort_on_timeout,
                       "Scheduler::run_until: simulation timed out "
                       "(likely deadlock)");
        break;
      }
      step();
    }
    return now_;
  }

 private:
  std::vector<Component*> components_;
  cycle_t now_ = 0;
};

}  // namespace wfasic::sim
