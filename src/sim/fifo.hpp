// Show-ahead FIFO model (§4.6): "the last unread data is available at the
// output port of the FIFO and is cleared by triggering the read request".
//
// The accelerator's input and output FIFOs are 16 bytes wide and 256 words
// deep; this template models any payload type. Occupancy statistics feed the
// bandwidth analysis in the benches.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/assert.hpp"

namespace wfasic::sim {

template <typename T>
class ShowAheadFifo {
 public:
  explicit ShowAheadFifo(std::size_t capacity) : capacity_(capacity) {
    WFASIC_REQUIRE(capacity > 0, "ShowAheadFifo: capacity must be positive");
  }

  [[nodiscard]] bool empty() const { return data_.empty(); }
  /// Write-side ready. An installed stall probe (fault injection) deasserts
  /// ready exactly like a full FIFO would: producers see full() and hold
  /// their beat, which is how transient FIFO stalls are modelled.
  [[nodiscard]] bool full() const {
    if (data_.size() >= capacity_) return true;
    return stall_probe_ && stall_probe_();
  }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Show-ahead output port: the oldest word, valid iff !empty().
  [[nodiscard]] const T& front() const {
    WFASIC_REQUIRE(!data_.empty(), "ShowAheadFifo::front on empty FIFO");
    return data_.front();
  }

  /// Write port. Caller must check !full() first (hardware would deassert
  /// ready); pushing into a full FIFO aborts.
  void push(T value) {
    WFASIC_REQUIRE(!full(), "ShowAheadFifo::push on full FIFO");
    data_.push_back(std::move(value));
    ++total_pushes_;
    if (data_.size() > high_water_) high_water_ = data_.size();
  }

  /// Read-request: clears the word shown at the output port.
  T pop() {
    WFASIC_REQUIRE(!data_.empty(), "ShowAheadFifo::pop on empty FIFO");
    T value = std::move(data_.front());
    data_.pop_front();
    ++total_pops_;
    return value;
  }

  [[nodiscard]] std::uint64_t total_pushes() const { return total_pushes_; }
  [[nodiscard]] std::uint64_t total_pops() const { return total_pops_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// Rearms the high-water mark at the current occupancy. The PMU clears
  /// per-run statistics on Start; a max cannot be rebased by subtraction
  /// like the monotone counters, so it is rearmed here instead.
  void reset_high_water() { high_water_ = data_.size(); }

  /// Installs (or clears, with an empty function) an external stall probe:
  /// while it returns true, full() reports the FIFO as not-ready. Used by
  /// the fault injector for transient/permanent FIFO stalls.
  void set_stall_probe(std::function<bool()> probe) {
    stall_probe_ = std::move(probe);
  }

  /// Drops all buffered words (a hardware soft reset). Statistics are
  /// preserved; occupancy goes to zero.
  void clear() { data_.clear(); }

  /// Snapshot access (sim/snapshot.hpp): the buffered words in order, and
  /// the matching wholesale restore. The stall probe is wiring, not state —
  /// it is re-attached by whoever owns the FIFO.
  [[nodiscard]] const std::deque<T>& contents() const { return data_; }
  void restore_contents(std::deque<T> data, std::uint64_t pushes,
                        std::uint64_t pops, std::size_t high_water) {
    WFASIC_REQUIRE(data.size() <= capacity_,
                   "ShowAheadFifo::restore_contents overflows capacity");
    data_ = std::move(data);
    total_pushes_ = pushes;
    total_pops_ = pops;
    high_water_ = high_water;
  }

 private:
  std::size_t capacity_;
  std::deque<T> data_;
  std::uint64_t total_pushes_ = 0;
  std::uint64_t total_pops_ = 0;
  std::size_t high_water_ = 0;
  std::function<bool()> stall_probe_;
};

}  // namespace wfasic::sim
